//! The [`PropertyGraph`] container and its adjacency structure.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::OnceLock;

use crate::ids::{EdgeId, ElementId, NodeId};
use crate::stats::GraphStats;
use crate::value::Value;

/// A rejected graph mutation. The graph is unchanged when any variant is
/// returned — mutations are all-or-nothing at the single-element level.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GraphError {
    /// The external name is already used by another element.
    DuplicateName(String),
    /// An edge endpoint does not name an existing node.
    UnknownNode(String),
    /// The named element does not exist.
    UnknownElement(String),
    /// A node cannot be removed while edges are still incident to it.
    NodeHasEdges(String),
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::DuplicateName(name) => write!(f, "duplicate element name {name:?}"),
            GraphError::UnknownNode(name) => write!(f, "unknown node {name:?}"),
            GraphError::UnknownElement(name) => write!(f, "unknown element {name:?}"),
            GraphError::NodeHasEdges(name) => {
                write!(f, "node {name:?} still has incident edges")
            }
        }
    }
}

impl std::error::Error for GraphError {}

/// Endpoint specification of an edge: `ρ(e)` in Definition 2.1.
///
/// Directed edges are *ordered* pairs `(src, dst)`; undirected edges are
/// *unordered* pairs, which this type normalizes so that structural equality
/// matches the mathematical definition (`{u, v} = {v, u}`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Endpoints {
    /// An ordered pair: the edge points from `src` to `dst`.
    Directed {
        /// The edge's source node.
        src: NodeId,
        /// The edge's target node.
        dst: NodeId,
    },
    /// An unordered pair (normalized: smaller id first).
    Undirected(NodeId, NodeId),
}

impl Endpoints {
    /// An ordered pair: the edge points from `src` to `dst`.
    pub fn directed(src: NodeId, dst: NodeId) -> Endpoints {
        Endpoints::Directed { src, dst }
    }

    /// An unordered pair, normalized so `{u,v}` and `{v,u}` compare equal.
    pub fn undirected(u: NodeId, v: NodeId) -> Endpoints {
        if u <= v {
            Endpoints::Undirected(u, v)
        } else {
            Endpoints::Undirected(v, u)
        }
    }

    /// True for ordered pairs.
    pub fn is_directed(&self) -> bool {
        matches!(self, Endpoints::Directed { .. })
    }

    /// The two endpoints, in storage order.
    pub fn pair(&self) -> (NodeId, NodeId) {
        match *self {
            Endpoints::Directed { src, dst } => (src, dst),
            Endpoints::Undirected(u, v) => (u, v),
        }
    }

    /// True if the edge connects `u` (at either end).
    pub fn touches(&self, n: NodeId) -> bool {
        let (a, b) = self.pair();
        a == n || b == n
    }

    /// Given one endpoint, the node at the opposite end (for self loops,
    /// the same node).
    pub fn other(&self, n: NodeId) -> Option<NodeId> {
        let (a, b) = self.pair();
        if a == n {
            Some(b)
        } else if b == n {
            Some(a)
        } else {
            None
        }
    }
}

/// How an incident edge is traversed when leaving a node.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Traversal {
    /// A directed edge followed source → target.
    Forward,
    /// A directed edge followed target → source (i.e. in reverse).
    Backward,
    /// An undirected edge (no inherent orientation).
    Undirected,
}

/// One entry of a node's adjacency list: take `edge` to reach `to`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Step {
    /// The edge traversed by this step.
    pub edge: EdgeId,
    /// The node the step arrives at.
    pub to: NodeId,
    /// How the edge is traversed (forward, backward, or undirected).
    pub traversal: Traversal,
}

/// Stored record for one node: its external name (e.g. `a1`), `λ` labels,
/// and `π` properties.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NodeData {
    /// The unique external name (the paper's node identifier).
    pub name: String,
    /// The node's label set `λ(n)`.
    pub labels: BTreeSet<String>,
    /// The node's property map `π(n, ·)`.
    pub properties: BTreeMap<String, Value>,
}

/// Stored record for one edge: endpoints (`ρ`), labels (`λ`), properties (`π`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EdgeData {
    /// The unique external name (the paper's edge identifier).
    pub name: String,
    /// The edge's endpoint pair `ρ(e)`.
    pub endpoints: Endpoints,
    /// The edge's label set `λ(e)`.
    pub labels: BTreeSet<String>,
    /// The edge's property map `π(e, ·)`.
    pub properties: BTreeMap<String, Value>,
}

impl NodeData {
    /// `π(self, key)`, or `Null` when the property is absent (partiality of π).
    pub fn property(&self, key: &str) -> &Value {
        self.properties.get(key).unwrap_or(&Value::Null)
    }

    /// True if `label ∈ λ(self)`.
    pub fn has_label(&self, label: &str) -> bool {
        self.labels.contains(label)
    }
}

impl EdgeData {
    /// `π(self, key)`, or `Null` when the property is absent.
    pub fn property(&self, key: &str) -> &Value {
        self.properties.get(key).unwrap_or(&Value::Null)
    }

    /// True if `label ∈ λ(self)`.
    pub fn has_label(&self, label: &str) -> bool {
        self.labels.contains(label)
    }
}

/// An in-memory property graph.
///
/// Elements have dense ids and unique external names; adjacency lists are
/// kept per node for O(degree) neighbourhood scans in the matcher.
#[derive(Clone, Debug, Default)]
pub struct PropertyGraph {
    nodes: Vec<NodeData>,
    edges: Vec<EdgeData>,
    /// Outgoing steps per node: every incident edge appears once per
    /// traversable direction (directed edges appear Forward at their source
    /// and Backward at their target; undirected edges appear at both ends —
    /// and only once for undirected self loops).
    adjacency: Vec<Vec<Step>>,
    names: HashMap<String, ElementId>,
    /// Lazily computed statistics catalog (see [`GraphStats`]); reset by
    /// every mutation so planners always see numbers for the current graph.
    stats: OnceLock<GraphStats>,
}

impl PropertyGraph {
    /// An empty graph.
    pub fn new() -> PropertyGraph {
        PropertyGraph::default()
    }

    /// Number of nodes `|N|`.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges `|E|`.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Adds a node with a unique external `name`.
    ///
    /// # Panics
    /// Panics if the name is already used by another element — external
    /// names play the role of the paper's identifiers, which are unique.
    pub fn add_node<L, P>(&mut self, name: &str, labels: L, properties: P) -> NodeId
    where
        L: IntoIterator,
        L::Item: Into<String>,
        P: IntoIterator<Item = (&'static str, Value)>,
    {
        match self.try_add_node(
            name,
            labels.into_iter().map(Into::into),
            properties.into_iter().map(|(k, v)| (k.to_owned(), v)),
        ) {
            Ok(id) => id,
            Err(e) => panic!("{e}"),
        }
    }

    /// Adds a node, returning [`GraphError::DuplicateName`] instead of
    /// panicking when the external name is already taken.
    pub fn try_add_node(
        &mut self,
        name: &str,
        labels: impl IntoIterator<Item = String>,
        properties: impl IntoIterator<Item = (String, Value)>,
    ) -> Result<NodeId, GraphError> {
        if self.names.contains_key(name) {
            return Err(GraphError::DuplicateName(name.to_owned()));
        }
        // An already-computed catalog is maintained in place (tallies for
        // one node are O(labels + properties)); a never-computed one
        // stays lazy.
        let cached = self.stats.take();
        let id = NodeId(self.nodes.len() as u32);
        self.names.insert(name.to_owned(), id.into());
        self.nodes.push(NodeData {
            name: name.to_owned(),
            labels: labels.into_iter().collect(),
            properties: properties.into_iter().collect(),
        });
        self.adjacency.push(Vec::new());
        if let Some(mut s) = cached {
            s.apply_add_node(self.nodes.last().expect("just pushed"));
            debug_assert_eq!(
                s,
                GraphStats::compute(self),
                "incremental node stats diverged from full recompute"
            );
            let _ = self.stats.set(s);
        }
        Ok(id)
    }

    /// Adds an edge with a unique external `name`.
    ///
    /// # Panics
    /// Panics if the name is duplicated or an endpoint id is out of range.
    pub fn add_edge<L, P>(
        &mut self,
        name: &str,
        endpoints: Endpoints,
        labels: L,
        properties: P,
    ) -> EdgeId
    where
        L: IntoIterator,
        L::Item: Into<String>,
        P: IntoIterator<Item = (&'static str, Value)>,
    {
        let (a, b) = endpoints.pair();
        assert!(a.index() < self.nodes.len(), "endpoint {a:?} out of range");
        assert!(b.index() < self.nodes.len(), "endpoint {b:?} out of range");
        match self.try_add_edge(
            name,
            endpoints,
            labels.into_iter().map(Into::into),
            properties.into_iter().map(|(k, v)| (k.to_owned(), v)),
        ) {
            Ok(id) => id,
            Err(e) => panic!("{e}"),
        }
    }

    /// Adds an edge, returning a [`GraphError`] instead of panicking on a
    /// duplicate name or an out-of-range endpoint.
    pub fn try_add_edge(
        &mut self,
        name: &str,
        endpoints: Endpoints,
        labels: impl IntoIterator<Item = String>,
        properties: impl IntoIterator<Item = (String, Value)>,
    ) -> Result<EdgeId, GraphError> {
        let (a, b) = endpoints.pair();
        if a.index() >= self.nodes.len() {
            return Err(GraphError::UnknownNode(format!("{a:?}")));
        }
        if b.index() >= self.nodes.len() {
            return Err(GraphError::UnknownNode(format!("{b:?}")));
        }
        if self.names.contains_key(name) {
            return Err(GraphError::DuplicateName(name.to_owned()));
        }
        // Maintained in place like in `try_add_node`; the degree refresh
        // only touches the two endpoints.
        let cached = self.stats.take();
        let id = EdgeId(self.edges.len() as u32);
        self.names.insert(name.to_owned(), id.into());
        self.edges.push(EdgeData {
            name: name.to_owned(),
            endpoints,
            labels: labels.into_iter().collect(),
            properties: properties.into_iter().collect(),
        });
        match endpoints {
            Endpoints::Directed { src, dst } => {
                self.adjacency[src.index()].push(Step {
                    edge: id,
                    to: dst,
                    traversal: Traversal::Forward,
                });
                self.adjacency[dst.index()].push(Step {
                    edge: id,
                    to: src,
                    traversal: Traversal::Backward,
                });
            }
            Endpoints::Undirected(u, v) => {
                self.adjacency[u.index()].push(Step {
                    edge: id,
                    to: v,
                    traversal: Traversal::Undirected,
                });
                if u != v {
                    self.adjacency[v.index()].push(Step {
                        edge: id,
                        to: u,
                        traversal: Traversal::Undirected,
                    });
                }
            }
        }
        if let Some(mut s) = cached {
            s.apply_add_edge(self, &self.edges[id.index()]);
            debug_assert_eq!(
                s,
                GraphStats::compute(self),
                "incremental edge stats diverged from full recompute"
            );
            let _ = self.stats.set(s);
        }
        Ok(id)
    }

    /// Sets `π(el, key) = value`; a [`Value::Null`] removes the property
    /// (restoring π's partiality at that key). The cached statistics
    /// catalog is invalidated and recomputed lazily on next use.
    pub fn set_property(&mut self, el: ElementId, key: &str, value: Value) {
        // Property edits can retarget planner-visible selectivities in
        // ways the incremental add path never models, so drop the cache.
        let _ = self.stats.take();
        let props = match el {
            ElementId::Node(n) => &mut self.nodes[n.index()].properties,
            ElementId::Edge(e) => &mut self.edges[e.index()].properties,
        };
        if value == Value::Null {
            props.remove(key);
        } else {
            props.insert(key.to_owned(), value);
        }
    }

    /// Removes an element. Edges are always removable; a node is removable
    /// only once no edges are incident to it ([`GraphError::NodeHasEdges`]
    /// otherwise). Ids stay dense: every element with a higher id of the
    /// same kind is shifted down by one, in adjacency and the name index
    /// alike. The cached statistics catalog is invalidated.
    pub fn remove_element(&mut self, el: ElementId) -> Result<(), GraphError> {
        match el {
            ElementId::Edge(e) => {
                if e.index() >= self.edges.len() {
                    return Err(GraphError::UnknownElement(format!("{e:?}")));
                }
                let _ = self.stats.take();
                let data = self.edges.remove(e.index());
                self.names.remove(&data.name);
                for adj in &mut self.adjacency {
                    adj.retain(|s| s.edge != e);
                    for s in adj.iter_mut() {
                        if s.edge.0 > e.0 {
                            s.edge.0 -= 1;
                        }
                    }
                }
                for (i, ed) in self.edges.iter().enumerate().skip(e.index()) {
                    self.names.insert(ed.name.clone(), EdgeId(i as u32).into());
                }
                Ok(())
            }
            ElementId::Node(n) => {
                if n.index() >= self.nodes.len() {
                    return Err(GraphError::UnknownElement(format!("{n:?}")));
                }
                if !self.adjacency[n.index()].is_empty() {
                    return Err(GraphError::NodeHasEdges(self.nodes[n.index()].name.clone()));
                }
                let _ = self.stats.take();
                let data = self.nodes.remove(n.index());
                self.adjacency.remove(n.index());
                self.names.remove(&data.name);
                // The removed node had degree 0, so no endpoint equals `n`;
                // only higher ids shift (which preserves the normalized
                // order of undirected pairs).
                for ed in &mut self.edges {
                    ed.endpoints = match ed.endpoints {
                        Endpoints::Directed { mut src, mut dst } => {
                            if src.0 > n.0 {
                                src.0 -= 1;
                            }
                            if dst.0 > n.0 {
                                dst.0 -= 1;
                            }
                            Endpoints::Directed { src, dst }
                        }
                        Endpoints::Undirected(mut u, mut v) => {
                            if u.0 > n.0 {
                                u.0 -= 1;
                            }
                            if v.0 > n.0 {
                                v.0 -= 1;
                            }
                            Endpoints::Undirected(u, v)
                        }
                    };
                }
                for adj in &mut self.adjacency {
                    for s in adj.iter_mut() {
                        if s.to.0 > n.0 {
                            s.to.0 -= 1;
                        }
                    }
                }
                for (i, nd) in self.nodes.iter().enumerate().skip(n.index()) {
                    self.names.insert(nd.name.clone(), NodeId(i as u32).into());
                }
                Ok(())
            }
        }
    }

    /// The full-recompute statistics oracle, promoted from the
    /// `debug_assert` inside the add paths: compares the cached
    /// incrementally-maintained catalog (if any) against
    /// [`GraphStats::compute`]. `Ok` when no catalog is cached — there is
    /// nothing stale to diverge.
    pub fn verify_stats(&self) -> Result<(), String> {
        let Some(cached) = self.stats.get() else {
            return Ok(());
        };
        let full = GraphStats::compute(self);
        if *cached == full {
            Ok(())
        } else {
            Err(format!(
                "cached stats diverged from full recompute:\n cached: {cached:?}\n   full: {full:?}"
            ))
        }
    }

    /// The record of node `n`.
    pub fn node(&self, n: NodeId) -> &NodeData {
        &self.nodes[n.index()]
    }

    /// The record of edge `e`.
    pub fn edge(&self, e: EdgeId) -> &EdgeData {
        &self.edges[e.index()]
    }

    /// Labels of either kind of element.
    pub fn labels(&self, el: ElementId) -> &BTreeSet<String> {
        match el {
            ElementId::Node(n) => &self.node(n).labels,
            ElementId::Edge(e) => &self.edge(e).labels,
        }
    }

    /// `π(el, key)` with `Null` for absent properties.
    pub fn property(&self, el: ElementId, key: &str) -> &Value {
        match el {
            ElementId::Node(n) => self.node(n).property(key),
            ElementId::Edge(e) => self.edge(e).property(key),
        }
    }

    /// External name of an element (`a1`, `t4`, ...).
    pub fn name(&self, el: ElementId) -> &str {
        match el {
            ElementId::Node(n) => &self.node(n).name,
            ElementId::Edge(e) => &self.edge(e).name,
        }
    }

    /// Looks an element up by external name.
    pub fn by_name(&self, name: &str) -> Option<ElementId> {
        self.names.get(name).copied()
    }

    /// Looks a node up by external name.
    pub fn node_by_name(&self, name: &str) -> Option<NodeId> {
        self.by_name(name).and_then(ElementId::as_node)
    }

    /// Looks an edge up by external name.
    pub fn edge_by_name(&self, name: &str) -> Option<EdgeId> {
        self.by_name(name).and_then(ElementId::as_edge)
    }

    /// All node ids in insertion order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// All edge ids in insertion order.
    pub fn edges(&self) -> impl Iterator<Item = EdgeId> + '_ {
        (0..self.edges.len() as u32).map(EdgeId)
    }

    /// Every traversable step out of `n` (directed out-edges forward,
    /// directed in-edges backward, undirected edges once per distinct end).
    pub fn steps(&self, n: NodeId) -> &[Step] {
        &self.adjacency[n.index()]
    }

    /// Number of directed edges whose source is `n`.
    pub fn out_degree(&self, n: NodeId) -> usize {
        self.adjacency[n.index()]
            .iter()
            .filter(|s| s.traversal == Traversal::Forward)
            .count()
    }

    /// Total number of incident traversal directions at `n`.
    pub fn degree(&self, n: NodeId) -> usize {
        self.adjacency[n.index()].len()
    }

    /// The statistics catalog for this graph, computed on first use and
    /// cached until the next mutation. See [`GraphStats`].
    pub fn stats(&self) -> &GraphStats {
        self.stats.get_or_init(|| GraphStats::compute(self))
    }

    /// Checks internal consistency: adjacency mirrors `ρ`, names are unique
    /// and resolvable. Used by tests and debug assertions.
    pub fn validate(&self) -> Result<(), String> {
        for e in self.edges() {
            let ep = self.edge(e).endpoints;
            let (a, b) = ep.pair();
            if a.index() >= self.nodes.len() || b.index() >= self.nodes.len() {
                return Err(format!("edge {e:?} has dangling endpoint"));
            }
        }
        for n in self.nodes() {
            for s in self.steps(n) {
                let ep = self.edge(s.edge).endpoints;
                if !ep.touches(n) || ep.other(n) != Some(s.to) {
                    return Err(format!("adjacency of {n:?} disagrees with ρ"));
                }
                match (s.traversal, ep) {
                    (Traversal::Forward, Endpoints::Directed { src, .. }) if src == n => {}
                    (Traversal::Backward, Endpoints::Directed { dst, .. }) if dst == n => {}
                    (Traversal::Undirected, Endpoints::Undirected(..)) => {}
                    _ => return Err(format!("bad traversal kind at {n:?}")),
                }
            }
        }
        if self.names.len() != self.nodes.len() + self.edges.len() {
            return Err("name index size mismatch".to_owned());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> (PropertyGraph, [NodeId; 3], [EdgeId; 4]) {
        let mut g = PropertyGraph::new();
        let a = g.add_node("a", ["L"], [("x", Value::Int(1))]);
        let b = g.add_node("b", ["L", "M"], []);
        let c = g.add_node("c", Vec::<String>::new(), []);
        let e1 = g.add_edge("e1", Endpoints::directed(a, b), ["T"], []);
        let e2 = g.add_edge("e2", Endpoints::directed(a, b), ["T"], []);
        let e3 = g.add_edge("e3", Endpoints::undirected(b, c), ["U"], []);
        let e4 = g.add_edge("e4", Endpoints::directed(c, c), ["T"], []);
        (g, [a, b, c], [e1, e2, e3, e4])
    }

    #[test]
    fn multigraph_and_self_loops_are_allowed() {
        let (g, [a, b, c], [e1, e2, _, e4]) = diamond();
        assert_eq!(g.edge(e1).endpoints, g.edge(e2).endpoints);
        assert_ne!(e1, e2);
        assert_eq!(g.edge(e4).endpoints, Endpoints::directed(c, c));
        assert_eq!(g.out_degree(a), 2);
        assert_eq!(g.degree(b), 3); // two backward + one undirected
        g.validate().unwrap();
    }

    #[test]
    fn undirected_endpoints_are_unordered() {
        assert_eq!(
            Endpoints::undirected(NodeId(5), NodeId(2)),
            Endpoints::undirected(NodeId(2), NodeId(5))
        );
        assert_ne!(
            Endpoints::directed(NodeId(5), NodeId(2)),
            Endpoints::directed(NodeId(2), NodeId(5))
        );
    }

    #[test]
    fn adjacency_directions() {
        let (g, [a, b, c], [_, _, e3, e4]) = diamond();
        let back_at_b: Vec<_> = g
            .steps(b)
            .iter()
            .filter(|s| s.traversal == Traversal::Backward)
            .collect();
        assert_eq!(back_at_b.len(), 2);
        assert!(back_at_b.iter().all(|s| s.to == a));
        let undirected_at_c: Vec<_> = g.steps(c).iter().filter(|s| s.edge == e3).collect();
        assert_eq!(undirected_at_c.len(), 1);
        assert_eq!(undirected_at_c[0].to, b);
        // A directed self loop is traversable both ways from its node.
        let loops: Vec<_> = g.steps(c).iter().filter(|s| s.edge == e4).collect();
        assert_eq!(loops.len(), 2);
    }

    #[test]
    fn undirected_self_loop_listed_once() {
        let mut g = PropertyGraph::new();
        let a = g.add_node("a", ["L"], []);
        let e = g.add_edge("e", Endpoints::undirected(a, a), ["U"], []);
        let entries: Vec<_> = g.steps(a).iter().filter(|s| s.edge == e).collect();
        assert_eq!(entries.len(), 1);
        g.validate().unwrap();
    }

    #[test]
    fn properties_default_to_null() {
        let (g, [a, ..], _) = diamond();
        assert_eq!(g.node(a).property("x"), &Value::Int(1));
        assert_eq!(g.node(a).property("missing"), &Value::Null);
        assert_eq!(g.property(a.into(), "missing"), &Value::Null);
    }

    #[test]
    fn name_lookup() {
        let (g, [a, ..], [e1, ..]) = diamond();
        assert_eq!(g.node_by_name("a"), Some(a));
        assert_eq!(g.edge_by_name("e1"), Some(e1));
        assert_eq!(g.node_by_name("e1"), None);
        assert_eq!(g.by_name("zzz"), None);
        assert_eq!(g.name(a.into()), "a");
    }

    #[test]
    #[should_panic(expected = "duplicate element name")]
    fn duplicate_names_rejected() {
        let mut g = PropertyGraph::new();
        g.add_node("a", ["L"], []);
        g.add_node("a", ["L"], []);
    }

    #[test]
    fn try_variants_report_typed_errors() {
        let (mut g, [a, ..], _) = diamond();
        assert_eq!(
            g.try_add_node("a", [], []),
            Err(GraphError::DuplicateName("a".to_owned()))
        );
        assert_eq!(
            g.try_add_edge("zz", Endpoints::directed(a, NodeId(99)), [], []),
            Err(GraphError::UnknownNode(format!("{:?}", NodeId(99))))
        );
        assert_eq!(
            g.try_add_edge("e1", Endpoints::directed(a, a), [], []),
            Err(GraphError::DuplicateName("e1".to_owned()))
        );
        g.validate().unwrap();
    }

    #[test]
    fn set_property_inserts_updates_and_null_removes() {
        let (mut g, [a, ..], [e1, ..]) = diamond();
        g.stats(); // prime the cache so invalidation is exercised
        g.set_property(a.into(), "x", Value::Int(7));
        assert_eq!(g.node(a).property("x"), &Value::Int(7));
        g.set_property(a.into(), "x", Value::Null);
        assert_eq!(g.node(a).property("x"), &Value::Null);
        g.set_property(e1.into(), "w", Value::str("hi"));
        assert_eq!(g.edge(e1).property("w"), &Value::str("hi"));
        g.verify_stats().unwrap();
        g.stats();
        g.verify_stats().unwrap();
    }

    #[test]
    fn remove_edge_shifts_higher_ids_densely() {
        let (mut g, [a, b, c], [e1, _, e3, e4]) = diamond();
        g.remove_element(ElementId::Edge(EdgeId(1))).unwrap(); // e2
        assert_eq!(g.edge_count(), 3);
        // e3/e4 shifted down by one; names still resolve.
        assert_eq!(g.edge_by_name("e1"), Some(e1));
        assert_eq!(g.edge_by_name("e3"), Some(EdgeId(1)));
        assert_eq!(g.edge_by_name("e4"), Some(EdgeId(2)));
        assert_eq!(g.edge_by_name("e2"), None);
        assert_eq!(g.out_degree(a), 1);
        assert_eq!(
            g.edge(g.edge_by_name("e3").unwrap()).endpoints,
            g.edge(EdgeId(1)).endpoints
        );
        let _ = (b, c, e3, e4);
        g.validate().unwrap();
    }

    #[test]
    fn remove_node_requires_degree_zero_and_compacts() {
        let (mut g, [_, b, _], _) = diamond();
        assert_eq!(
            g.remove_element(ElementId::Node(b)),
            Err(GraphError::NodeHasEdges("b".to_owned()))
        );
        let d = g.add_node("d", ["L"], []);
        let e = g.add_node("e", Vec::<String>::new(), []);
        g.remove_element(ElementId::Node(d)).unwrap();
        // `e` shifted into d's slot; adjacency and names stay coherent.
        assert_eq!(g.node_by_name("e"), Some(d));
        assert_eq!(g.node_by_name("d"), None);
        assert_eq!(g.node_count(), 4);
        let _ = e;
        g.validate().unwrap();
    }

    #[test]
    fn labels_of_elements() {
        let (g, [_, b, _], [e1, ..]) = diamond();
        assert!(g.node(b).has_label("M"));
        assert!(!g.node(b).has_label("T"));
        assert!(g.edge(e1).has_label("T"));
        assert_eq!(g.labels(b.into()).len(), 2);
    }
}
