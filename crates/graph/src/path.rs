//! Paths (walks) through a property graph.
//!
//! The paper (footnote 1, §2) uses *path* for what graph theory calls a
//! *walk*: an alternating sequence of nodes and edges that starts and ends
//! with a node, where consecutive nodes are connected by the edge between
//! them. Nodes and edges may repeat — restrictors (`TRAIL`, `ACYCLIC`,
//! `SIMPLE`) are what rule repetitions out, and they live in the matching
//! engine, not in this type.

use std::fmt;

use crate::graph::PropertyGraph;
use crate::ids::{EdgeId, NodeId};

/// An alternating node/edge sequence `n0, e1, n1, ..., ek, nk`.
///
/// Stored as `k+1` nodes and `k` edges. A zero-length path is a single node.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Path {
    nodes: Vec<NodeId>,
    edges: Vec<EdgeId>,
}

impl Path {
    /// The zero-length path sitting on `start`.
    pub fn single(start: NodeId) -> Path {
        Path {
            nodes: vec![start],
            edges: Vec::new(),
        }
    }

    /// Builds a path from explicit sequences.
    ///
    /// # Panics
    /// Panics unless `nodes.len() == edges.len() + 1` and `nodes` is
    /// non-empty.
    pub fn new(nodes: Vec<NodeId>, edges: Vec<EdgeId>) -> Path {
        assert!(!nodes.is_empty(), "a path contains at least one node");
        assert_eq!(
            nodes.len(),
            edges.len() + 1,
            "a path alternates nodes and edges"
        );
        Path { nodes, edges }
    }

    /// Number of edges (the paper's path length).
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// True for single-node paths.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// First node.
    pub fn start(&self) -> NodeId {
        self.nodes[0]
    }

    /// Last node.
    pub fn end(&self) -> NodeId {
        *self.nodes.last().expect("non-empty")
    }

    /// The node sequence.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// The edge sequence.
    pub fn edges(&self) -> &[EdgeId] {
        &self.edges
    }

    /// Extends the walk by one step, in place.
    pub fn push(&mut self, edge: EdgeId, to: NodeId) {
        self.edges.push(edge);
        self.nodes.push(to);
    }

    /// A copy of the walk extended by one step.
    pub fn extended(&self, edge: EdgeId, to: NodeId) -> Path {
        let mut p = self.clone();
        p.push(edge, to);
        p
    }

    /// Concatenates two walks sharing an endpoint (`self.end() == other.start()`).
    ///
    /// # Panics
    /// Panics if the endpoints do not meet.
    pub fn concat(&self, other: &Path) -> Path {
        assert_eq!(self.end(), other.start(), "paths must share an endpoint");
        let mut nodes = self.nodes.clone();
        nodes.extend_from_slice(&other.nodes[1..]);
        let mut edges = self.edges.clone();
        edges.extend_from_slice(&other.edges);
        Path { nodes, edges }
    }

    /// True if no edge occurs twice (the `TRAIL` condition).
    pub fn is_trail(&self) -> bool {
        let mut seen = std::collections::HashSet::with_capacity(self.edges.len());
        self.edges.iter().all(|e| seen.insert(*e))
    }

    /// True if no node occurs twice (the `ACYCLIC` condition).
    pub fn is_acyclic(&self) -> bool {
        let mut seen = std::collections::HashSet::with_capacity(self.nodes.len());
        self.nodes.iter().all(|n| seen.insert(*n))
    }

    /// True if no node occurs twice except that the first and last may be
    /// equal (the `SIMPLE` condition).
    pub fn is_simple(&self) -> bool {
        if self.is_acyclic() {
            return true;
        }
        if self.start() != self.end() || self.is_empty() {
            return false;
        }
        let mut seen = std::collections::HashSet::with_capacity(self.nodes.len());
        self.nodes[..self.nodes.len() - 1]
            .iter()
            .all(|n| seen.insert(*n))
    }

    /// Checks that every edge of the walk actually connects its neighbouring
    /// nodes in `g`, honouring that a directed edge may be traversed in
    /// either direction (the paper's `path(c1, li1, a1, ...)` follows `li1`
    /// in reverse).
    pub fn is_valid_in(&self, g: &PropertyGraph) -> bool {
        self.edges.iter().enumerate().all(|(i, &e)| {
            let ep = g.edge(e).endpoints;
            let (from, to) = (self.nodes[i], self.nodes[i + 1]);
            ep.touches(from) && ep.other(from) == Some(to)
        })
    }

    /// Renders as the paper writes paths: `path(a6,t5,a3,t2,a2)`, using the
    /// external element names in `g`.
    pub fn display<'a>(&'a self, g: &'a PropertyGraph) -> PathDisplay<'a> {
        PathDisplay {
            path: self,
            graph: g,
        }
    }
}

/// Helper returned by [`Path::display`].
pub struct PathDisplay<'a> {
    path: &'a Path,
    graph: &'a PropertyGraph,
}

impl fmt::Display for PathDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "path(")?;
        for (i, n) in self.path.nodes.iter().enumerate() {
            if i > 0 {
                write!(f, ",{}", self.graph.edge(self.path.edges[i - 1]).name)?;
                write!(f, ",")?;
            }
            write!(f, "{}", self.graph.node(*n).name)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Endpoints;

    fn triangle() -> (PropertyGraph, [NodeId; 3], [EdgeId; 3]) {
        let mut g = PropertyGraph::new();
        let a = g.add_node("a", ["N"], []);
        let b = g.add_node("b", ["N"], []);
        let c = g.add_node("c", ["N"], []);
        let ab = g.add_edge("ab", Endpoints::directed(a, b), ["T"], []);
        let bc = g.add_edge("bc", Endpoints::directed(b, c), ["T"], []);
        let ca = g.add_edge("ca", Endpoints::directed(c, a), ["T"], []);
        (g, [a, b, c], [ab, bc, ca])
    }

    #[test]
    fn construction_and_accessors() {
        let (_, [a, b, c], [ab, bc, _]) = triangle();
        let p = Path::new(vec![a, b, c], vec![ab, bc]);
        assert_eq!(p.len(), 2);
        assert_eq!(p.start(), a);
        assert_eq!(p.end(), c);
        assert!(!p.is_empty());
        assert!(Path::single(a).is_empty());
    }

    #[test]
    #[should_panic(expected = "alternates")]
    fn malformed_paths_rejected() {
        let (_, [a, b, _], [ab, bc, _]) = triangle();
        Path::new(vec![a, b], vec![ab, bc]);
    }

    #[test]
    fn validity_allows_reverse_traversal() {
        let (g, [a, b, _], [ab, ..]) = triangle();
        // Forward traversal.
        assert!(Path::new(vec![a, b], vec![ab]).is_valid_in(&g));
        // Reverse traversal of a directed edge is still a valid walk.
        assert!(Path::new(vec![b, a], vec![ab]).is_valid_in(&g));
        // But an edge must touch its preceding node.
        let (_, [_, _, c], _) = triangle();
        assert!(!Path::new(vec![c, a], vec![ab]).is_valid_in(&g));
    }

    #[test]
    fn trail_acyclic_simple() {
        let (_, [a, b, c], [ab, bc, ca]) = triangle();
        let cycle = Path::new(vec![a, b, c, a], vec![ab, bc, ca]);
        assert!(cycle.is_trail());
        assert!(!cycle.is_acyclic());
        assert!(cycle.is_simple());

        let repeat_edge = Path::new(vec![a, b, a, b], vec![ab, ab, ab]);
        assert!(!repeat_edge.is_trail());
        assert!(!repeat_edge.is_simple());

        let straight = Path::new(vec![a, b, c], vec![ab, bc]);
        assert!(straight.is_trail());
        assert!(straight.is_acyclic());
        assert!(straight.is_simple());

        // Revisiting an interior node breaks SIMPLE even when ends differ.
        let lollipop = Path::new(vec![a, b, c, a, b], vec![ab, bc, ca, ab]);
        assert!(!lollipop.is_acyclic());
        assert!(!lollipop.is_simple());
    }

    #[test]
    fn zero_length_paths_are_simple_and_acyclic() {
        let (_, [a, ..], _) = triangle();
        let p = Path::single(a);
        assert!(p.is_trail() && p.is_acyclic() && p.is_simple());
    }

    #[test]
    fn concat_and_extend() {
        let (_, [a, b, c], [ab, bc, _]) = triangle();
        let p1 = Path::new(vec![a, b], vec![ab]);
        let p2 = Path::new(vec![b, c], vec![bc]);
        let joined = p1.concat(&p2);
        assert_eq!(joined, Path::new(vec![a, b, c], vec![ab, bc]));
        assert_eq!(p1.extended(bc, c), joined);
    }

    #[test]
    fn display_matches_paper_notation() {
        let (g, [a, b, c], [ab, bc, _]) = triangle();
        let p = Path::new(vec![a, b, c], vec![ab, bc]);
        assert_eq!(p.display(&g).to_string(), "path(a,ab,b,bc,c)");
        assert_eq!(Path::single(a).display(&g).to_string(), "path(a)");
    }
}
