//! Property graph data model, as defined in Definition 2.1 of
//! *Graph Pattern Matching in GQL and SQL/PGQ* (Deutsch et al., SIGMOD 2022).
//!
//! A property graph is a tuple `G = (N, E, ρ, λ, π)` where
//!
//! * `N` is a finite set of node identifiers,
//! * `E` is a finite set of edge identifiers disjoint from `N`,
//! * `ρ` maps every edge to an ordered (directed) or unordered (undirected)
//!   pair of nodes,
//! * `λ` maps every element (node or edge) to a finite set of labels,
//! * `π` partially maps `(element, property-name)` pairs to values.
//!
//! The model is a *mixed pseudo-multigraph*: edges may be directed or
//! undirected, self loops are allowed, and several edges may connect the same
//! endpoints. Both nodes and edges carry labels and property/value pairs.
//!
//! The crate also provides [`Path`], the alternating node/edge sequences
//! ("walks" in graph-theoretic terminology) that GPML path patterns bind to.
//!
//! # Example
//!
//! ```
//! use property_graph::{PropertyGraph, Value, Endpoints};
//!
//! let mut g = PropertyGraph::new();
//! let a1 = g.add_node("a1", ["Account"], [("owner", Value::str("Scott"))]);
//! let a2 = g.add_node("a2", ["Account"], [("owner", Value::str("Aretha"))]);
//! let t1 = g.add_edge("t1", Endpoints::directed(a1, a2), ["Transfer"],
//!                     [("amount", Value::Int(8_000_000))]);
//! assert!(g.edge(t1).endpoints.is_directed());
//! assert_eq!(g.node(a1).property("owner"), &Value::str("Scott"));
//! assert_eq!(g.out_degree(a1), 1);
//! ```

#![warn(missing_docs)]

pub mod graph;
pub mod ids;
pub mod path;
pub mod stats;
pub mod value;

pub use graph::{EdgeData, Endpoints, GraphError, NodeData, PropertyGraph, Step, Traversal};
pub use ids::{EdgeId, ElementId, NodeId};
pub use path::Path;
pub use stats::{DegreeHistogram, DegreeStats, EdgeLabelStats, GraphStats};
pub use value::Value;
