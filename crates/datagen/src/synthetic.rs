//! Seeded synthetic workloads for benchmarks and property tests.
//!
//! All generators are deterministic in their parameters (and seed, where
//! randomness is involved) so that benchmark runs and failing property-test
//! cases are reproducible.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use property_graph::{Endpoints, NodeId, PropertyGraph, Value};

/// A directed chain `n0 → n1 → ... → n_{len}` of `Transfer` edges between
/// `Account` nodes (so `len + 1` nodes, `len` edges).
pub fn chain(len: usize) -> PropertyGraph {
    let mut g = PropertyGraph::new();
    let nodes: Vec<NodeId> = (0..=len)
        .map(|i| {
            g.add_node(
                &format!("n{i}"),
                ["Account"],
                [
                    ("owner", Value::str(format!("owner{i}"))),
                    ("isBlocked", Value::str(if i == len { "yes" } else { "no" })),
                ],
            )
        })
        .collect();
    for i in 0..len {
        g.add_edge(
            &format!("t{i}"),
            Endpoints::directed(nodes[i], nodes[i + 1]),
            ["Transfer"],
            [("amount", Value::Int(1_000_000 * (i as i64 + 1)))],
        );
    }
    g
}

/// A directed cycle of `len` nodes (`len` edges). Cycles are what make
/// unrestricted pattern matching non-terminating (§5), so they are the
/// core stressor for restrictor and selector benchmarks.
pub fn cycle(len: usize) -> PropertyGraph {
    assert!(len >= 1, "a cycle needs at least one node");
    let mut g = PropertyGraph::new();
    let nodes: Vec<NodeId> = (0..len)
        .map(|i| {
            g.add_node(
                &format!("n{i}"),
                ["Account"],
                [("owner", Value::str(format!("owner{i}")))],
            )
        })
        .collect();
    for i in 0..len {
        g.add_edge(
            &format!("t{i}"),
            Endpoints::directed(nodes[i], nodes[(i + 1) % len]),
            ["Transfer"],
            [("amount", Value::Int(1_000_000))],
        );
    }
    g
}

/// A `w × h` grid with directed edges rightwards and downwards — many
/// same-length shortest paths between corners, the worst case for
/// `ALL SHORTEST`.
pub fn grid(w: usize, h: usize) -> PropertyGraph {
    assert!(w >= 1 && h >= 1);
    let mut g = PropertyGraph::new();
    let mut ids = Vec::with_capacity(w * h);
    for y in 0..h {
        for x in 0..w {
            ids.push(g.add_node(&format!("n{x}_{y}"), ["Cell"], []));
        }
    }
    let at = |x: usize, y: usize| ids[y * w + x];
    for y in 0..h {
        for x in 0..w {
            if x + 1 < w {
                g.add_edge(
                    &format!("r{x}_{y}"),
                    Endpoints::directed(at(x, y), at(x + 1, y)),
                    ["Step"],
                    [],
                );
            }
            if y + 1 < h {
                g.add_edge(
                    &format!("d{x}_{y}"),
                    Endpoints::directed(at(x, y), at(x, y + 1)),
                    ["Step"],
                    [],
                );
            }
        }
    }
    g
}

/// Parameters for [`transfer_network`].
#[derive(Clone, Copy, Debug)]
pub struct TransferNetworkConfig {
    /// Number of accounts.
    pub accounts: usize,
    /// Number of random transfer edges.
    pub transfers: usize,
    /// Fraction (0.0–1.0) of blocked accounts.
    pub blocked_share: f64,
    /// RNG seed; equal seeds give equal graphs.
    pub seed: u64,
}

impl Default for TransferNetworkConfig {
    fn default() -> Self {
        TransferNetworkConfig {
            accounts: 100,
            transfers: 300,
            blocked_share: 0.1,
            seed: 42,
        }
    }
}

/// A random bank-transfer network in the style of Figure 1: `Account`
/// nodes (some blocked), directed `Transfer` edges with random amounts,
/// a handful of places, phones shared between accounts, and IP sign-ins.
pub fn transfer_network(cfg: TransferNetworkConfig) -> PropertyGraph {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut g = PropertyGraph::new();

    let accounts: Vec<NodeId> = (0..cfg.accounts)
        .map(|i| {
            let blocked = rng.gen_bool(cfg.blocked_share);
            g.add_node(
                &format!("a{i}"),
                ["Account"],
                [
                    ("owner", Value::str(format!("owner{i}"))),
                    ("isBlocked", Value::str(if blocked { "yes" } else { "no" })),
                ],
            )
        })
        .collect();

    let cities = ["Ankh-Morpork", "Zembla", "Llamedos"];
    let places: Vec<NodeId> = cities
        .iter()
        .enumerate()
        .map(|(i, name)| {
            g.add_node(
                &format!("c{i}"),
                ["City", "Country"],
                [("name", Value::str(*name))],
            )
        })
        .collect();
    for (i, &a) in accounts.iter().enumerate() {
        let c = places[rng.gen_range(0..places.len())];
        g.add_edge(
            &format!("li{i}"),
            Endpoints::directed(a, c),
            ["isLocatedIn"],
            [],
        );
    }

    for i in 0..cfg.transfers {
        let s = accounts[rng.gen_range(0..accounts.len())];
        let d = accounts[rng.gen_range(0..accounts.len())];
        let amount = rng.gen_range(1..=20i64) * 1_000_000;
        g.add_edge(
            &format!("t{i}"),
            Endpoints::directed(s, d),
            ["Transfer"],
            [
                ("amount", Value::Int(amount)),
                ("date", Value::str(format!("{}/1/2020", 1 + i % 12))),
            ],
        );
    }

    // One phone per two accounts, shared — the §4.2 same-phone scenario.
    let phones = (cfg.accounts / 2).max(1);
    for p in 0..phones {
        let phone = g.add_node(
            &format!("p{p}"),
            ["Phone"],
            [
                ("number", Value::Int(p as i64)),
                (
                    "isBlocked",
                    Value::str(if rng.gen_bool(0.05) { "yes" } else { "no" }),
                ),
            ],
        );
        for (j, &a) in accounts.iter().enumerate().filter(|(j, _)| j % phones == p) {
            g.add_edge(
                &format!("hp{p}_{j}"),
                Endpoints::undirected(a, phone),
                ["hasPhone"],
                [],
            );
        }
    }
    g
}

/// A random graph and pattern workload for engine-equivalence property
/// tests: a small dense graph with mixed directed/undirected edges, two
/// labels, and integer weights.
pub fn small_mixed(seed: u64, nodes: usize, edges: usize) -> PropertyGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = PropertyGraph::new();
    let ids: Vec<NodeId> = (0..nodes.max(1))
        .map(|i| {
            let label = if rng.gen_bool(0.5) { "A" } else { "B" };
            g.add_node(
                &format!("n{i}"),
                [label],
                [("w", Value::Int(rng.gen_range(0..5)))],
            )
        })
        .collect();
    for i in 0..edges {
        let u = ids[rng.gen_range(0..ids.len())];
        let v = ids[rng.gen_range(0..ids.len())];
        let ep = if rng.gen_bool(0.7) {
            Endpoints::directed(u, v)
        } else {
            Endpoints::undirected(u, v)
        };
        let label = if rng.gen_bool(0.6) { "T" } else { "U" };
        g.add_edge(
            &format!("e{i}"),
            ep,
            [label],
            [("w", Value::Int(rng.gen_range(0..5)))],
        );
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_shape() {
        let g = chain(5);
        assert_eq!(g.node_count(), 6);
        assert_eq!(g.edge_count(), 5);
        assert!(g.validate().is_ok());
        // Endpoint degrees.
        assert_eq!(g.out_degree(NodeId(0)), 1);
        assert_eq!(g.out_degree(NodeId(5)), 0);
    }

    #[test]
    fn cycle_shape() {
        let g = cycle(4);
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 4);
        for n in g.nodes() {
            assert_eq!(g.out_degree(n), 1);
        }
        assert!(g.validate().is_ok());
    }

    #[test]
    fn grid_shape() {
        let g = grid(3, 2);
        assert_eq!(g.node_count(), 6);
        // Right edges: 2 per row × 2 rows; down edges: 3.
        assert_eq!(g.edge_count(), 2 * 2 + 3);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn transfer_network_is_seed_deterministic() {
        let cfg = TransferNetworkConfig {
            accounts: 20,
            transfers: 40,
            ..Default::default()
        };
        let g1 = transfer_network(cfg);
        let g2 = transfer_network(cfg);
        assert_eq!(g1.node_count(), g2.node_count());
        assert_eq!(g1.edge_count(), g2.edge_count());
        for e in g1.edges() {
            assert_eq!(g1.edge(e).endpoints, g2.edge(e).endpoints);
            assert_eq!(g1.edge(e).properties, g2.edge(e).properties);
        }
        let g3 = transfer_network(TransferNetworkConfig { seed: 43, ..cfg });
        let same = g1
            .edges()
            .all(|e| g1.edge(e).endpoints == g3.edge(e).endpoints);
        assert!(!same, "different seeds should differ");
    }

    #[test]
    fn transfer_network_census() {
        let cfg = TransferNetworkConfig {
            accounts: 30,
            transfers: 50,
            blocked_share: 0.5,
            seed: 7,
        };
        let g = transfer_network(cfg);
        let accounts = g
            .nodes()
            .filter(|n| g.node(*n).has_label("Account"))
            .count();
        assert_eq!(accounts, 30);
        let transfers = g
            .edges()
            .filter(|e| g.edge(*e).has_label("Transfer"))
            .count();
        assert_eq!(transfers, 50);
        let blocked = g
            .nodes()
            .filter(|n| g.node(*n).property("isBlocked") == &Value::str("yes"))
            .count();
        assert!(blocked > 0, "with 50% share some accounts are blocked");
        assert!(g.validate().is_ok());
    }

    #[test]
    fn small_mixed_is_valid_and_deterministic() {
        let g1 = small_mixed(9, 6, 12);
        let g2 = small_mixed(9, 6, 12);
        assert_eq!(g1.node_count(), 6);
        assert_eq!(g1.edge_count(), 12);
        assert!(g1.validate().is_ok());
        for e in g1.edges() {
            assert_eq!(g1.edge(e).endpoints, g2.edge(e).endpoints);
        }
    }
}
