//! Exact reconstruction of the paper's Figure 1 property graph.
//!
//! The graph holds information on bank accounts, their location, their
//! phones and IP addresses, and financial transactions between them. Every
//! element identifier, label, and property value is taken from the figure
//! and cross-checked against the worked examples:
//!
//! * the tabular representation in Figure 2 fixes `t1: a1→a3 (8M)`,
//!   `t2: a3→a2`, `t3: a2→a4`, and `sip1: a1→ip1`, `sip2: a5→ip2`;
//! * the §6.4 part tables fix `t4: a4→a6`, `t5: a6→a3`, `t6: a6→a5`,
//!   `t7: a3→a5`, `t8: a5→a1` and all six `isLocatedIn` edges
//!   (`a1,a3,a5 → c1` and `a2,a4,a6 → c2`);
//! * the §2 example walk `path(c1,li1,a1,t1,a3,hp3,p2)` fixes `li1` at
//!   `a1` and `hp3` between `a3` and `p2`;
//! * the §4.2 same-phone example (`p↦p1, s↦a5, t↦t8, d↦a1` and
//!   `p↦p2, s↦a3, t↦t2, d↦a2`) fixes phone sharing: `p1 ~ {a1, a5}` and
//!   `p2 ~ {a2, a3}`;
//! * `t6` must fail `amount > 5M` (§6.4), which matches its `4M` label.

use property_graph::{Endpoints, PropertyGraph, Value};

/// Builds the Figure 1 graph: 14 nodes (6 accounts, 2 places, 4 phones,
/// 2 IPs) and 22 edges (8 transfers, 6 locations, 6 phone links, 2 sign-ins).
pub fn fig1() -> PropertyGraph {
    let mut g = PropertyGraph::new();

    // -- Accounts (owners from the figure; only Jay is blocked). ------------
    let owners = ["Scott", "Aretha", "Mike", "Jay", "Charles", "Dave"];
    let accounts: Vec<_> = owners
        .iter()
        .enumerate()
        .map(|(i, owner)| {
            let blocked = if *owner == "Jay" { "yes" } else { "no" };
            g.add_node(
                &format!("a{}", i + 1),
                ["Account"],
                [
                    ("owner", Value::str(*owner)),
                    ("isBlocked", Value::str(blocked)),
                ],
            )
        })
        .collect();
    let [a1, a2, a3, a4, a5, a6] = accounts.try_into().expect("six accounts");

    // -- Places. -------------------------------------------------------------
    let c1 = g.add_node("c1", ["Country"], [("name", Value::str("Zembla"))]);
    let c2 = g.add_node(
        "c2",
        ["City", "Country"],
        [("name", Value::str("Ankh-Morpork"))],
    );

    // -- Phones (none blocked in the figure). --------------------------------
    let phones: Vec<_> = (1..=4)
        .map(|i| {
            g.add_node(
                &format!("p{i}"),
                ["Phone"],
                [
                    ("number", Value::Int(i * 111)),
                    ("isBlocked", Value::str("no")),
                ],
            )
        })
        .collect();
    let [p1, p2, p3, p4] = phones.try_into().expect("four phones");

    // -- IP addresses. --------------------------------------------------------
    let ip1 = g.add_node(
        "ip1",
        ["IP"],
        [
            ("number", Value::str("123.111")),
            ("isBlocked", Value::str("no")),
        ],
    );
    let ip2 = g.add_node(
        "ip2",
        ["IP"],
        [
            ("number", Value::str("123.222")),
            ("isBlocked", Value::str("no")),
        ],
    );

    // -- Transfers (directed). -------------------------------------------------
    let transfers = [
        ("t1", a1, a3, "1/1/2020", 8),
        ("t2", a3, a2, "2/1/2020", 10),
        ("t3", a2, a4, "3/1/2020", 10),
        ("t4", a4, a6, "4/1/2020", 10),
        ("t5", a6, a3, "6/1/2020", 10),
        ("t6", a6, a5, "7/1/2020", 4),
        ("t7", a3, a5, "8/1/2020", 6),
        ("t8", a5, a1, "9/1/2020", 9),
    ];
    for (name, src, dst, date, millions) in transfers {
        g.add_edge(
            name,
            Endpoints::directed(src, dst),
            ["Transfer"],
            [
                ("date", Value::str(date)),
                ("amount", Value::Int(millions * 1_000_000)),
            ],
        );
    }

    // -- isLocatedIn (directed, account → place). --------------------------------
    let locations = [
        ("li1", a1, c1),
        ("li2", a2, c2),
        ("li3", a3, c1),
        ("li4", a4, c2),
        ("li5", a5, c1),
        ("li6", a6, c2),
    ];
    for (name, account, place) in locations {
        g.add_edge(
            name,
            Endpoints::directed(account, place),
            ["isLocatedIn"],
            [],
        );
    }

    // -- hasPhone (undirected). -----------------------------------------------
    let phone_links = [
        ("hp1", a1, p1),
        ("hp2", a2, p2),
        ("hp3", a3, p2),
        ("hp4", a4, p3),
        ("hp5", a5, p1),
        ("hp6", a6, p4),
    ];
    for (name, account, phone) in phone_links {
        g.add_edge(
            name,
            Endpoints::undirected(account, phone),
            ["hasPhone"],
            [],
        );
    }

    // -- signInWithIP (directed, account → IP; Figure 2 tabular form). -----------
    g.add_edge("sip1", Endpoints::directed(a1, ip1), ["signInWithIP"], []);
    g.add_edge("sip2", Endpoints::directed(a5, ip2), ["signInWithIP"], []);

    debug_assert!(g.validate().is_ok());
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use property_graph::Path;

    #[test]
    fn element_census_matches_figure1() {
        let g = fig1();
        assert_eq!(g.node_count(), 14);
        assert_eq!(g.edge_count(), 22);
        let count_label = |l: &str| g.nodes().filter(|n| g.node(*n).has_label(l)).count();
        assert_eq!(count_label("Account"), 6);
        assert_eq!(count_label("Country"), 2);
        assert_eq!(count_label("City"), 1);
        assert_eq!(count_label("Phone"), 4);
        assert_eq!(count_label("IP"), 2);
        let count_edge_label = |l: &str| g.edges().filter(|e| g.edge(*e).has_label(l)).count();
        assert_eq!(count_edge_label("Transfer"), 8);
        assert_eq!(count_edge_label("isLocatedIn"), 6);
        assert_eq!(count_edge_label("hasPhone"), 6);
        assert_eq!(count_edge_label("signInWithIP"), 2);
    }

    #[test]
    fn only_jay_is_blocked() {
        let g = fig1();
        let blocked: Vec<_> = g
            .nodes()
            .filter(|n| {
                g.node(*n).has_label("Account")
                    && g.node(*n).property("isBlocked") == &Value::str("yes")
            })
            .map(|n| g.node(n).property("owner").clone())
            .collect();
        assert_eq!(blocked, vec![Value::str("Jay")]);
    }

    #[test]
    fn section2_example_walk_is_valid() {
        // path(c1, li1, a1, t1, a3, hp3, p2): li1 in reverse, t1 forward,
        // hp3 undirected (§2).
        let g = fig1();
        let n = |s: &str| g.node_by_name(s).unwrap();
        let e = |s: &str| g.edge_by_name(s).unwrap();
        let p = Path::new(
            vec![n("c1"), n("a1"), n("a3"), n("p2")],
            vec![e("li1"), e("t1"), e("hp3")],
        );
        assert!(p.is_valid_in(&g));
        assert_eq!(p.display(&g).to_string(), "path(c1,li1,a1,t1,a3,hp3,p2)");
    }

    #[test]
    fn transfer_endpoints_match_figure2_and_section6() {
        let g = fig1();
        let check = |edge: &str, src: &str, dst: &str| {
            let e = g.edge_by_name(edge).unwrap();
            let (s, d) = g.edge(e).endpoints.pair();
            assert!(g.edge(e).endpoints.is_directed(), "{edge} directed");
            assert_eq!(g.node(s).name, src, "{edge} source");
            assert_eq!(g.node(d).name, dst, "{edge} target");
        };
        check("t1", "a1", "a3");
        check("t2", "a3", "a2");
        check("t3", "a2", "a4");
        check("t4", "a4", "a6");
        check("t5", "a6", "a3");
        check("t6", "a6", "a5");
        check("t7", "a3", "a5");
        check("t8", "a5", "a1");
    }

    #[test]
    fn only_t6_fails_the_5m_prefilter() {
        // §6.4: "the edge (a6,t6,a5) does not appear ... as it fails the
        // WHERE condition" amount > 5M.
        let g = fig1();
        let small: Vec<_> = g
            .edges()
            .filter(|e| {
                g.edge(*e).has_label("Transfer")
                    && (g
                        .edge(*e)
                        .property("amount")
                        .sql_compare(&Value::Int(5_000_000))
                        != Some(std::cmp::Ordering::Greater))
            })
            .map(|e| g.edge(e).name.clone())
            .collect();
        assert_eq!(small, vec!["t6".to_owned()]);
    }

    #[test]
    fn ankh_morpork_hosts_a2_a4_a6() {
        let g = fig1();
        let c2 = g.node_by_name("c2").unwrap();
        let mut residents: Vec<_> = g
            .steps(c2)
            .iter()
            .filter(|s| g.edge(s.edge).has_label("isLocatedIn"))
            .map(|s| g.node(s.to).name.clone())
            .collect();
        residents.sort();
        assert_eq!(residents, vec!["a2", "a4", "a6"]);
    }

    #[test]
    fn phone_sharing_matches_section42() {
        // p1 ~ {a1, a5}, p2 ~ {a2, a3}; hasPhone is undirected.
        let g = fig1();
        let accounts_of = |phone: &str| {
            let p = g.node_by_name(phone).unwrap();
            let mut v: Vec<_> = g
                .steps(p)
                .iter()
                .map(|s| g.node(s.to).name.clone())
                .collect();
            v.sort();
            v
        };
        assert_eq!(accounts_of("p1"), vec!["a1", "a5"]);
        assert_eq!(accounts_of("p2"), vec!["a2", "a3"]);
        assert_eq!(accounts_of("p3"), vec!["a4"]);
        assert_eq!(accounts_of("p4"), vec!["a6"]);
        let hp3 = g.edge_by_name("hp3").unwrap();
        assert!(!g.edge(hp3).endpoints.is_directed());
    }
}
