//! Workload generators for the GPML reproduction.
//!
//! [`fig1()`](fig1::fig1) reconstructs the paper's Figure 1 bank graph exactly (every
//! worked example in the paper is validated against it); [`synthetic`]
//! provides seeded chains, cycles, grids, and random transfer networks for
//! benchmarks and property tests.

pub mod fig1;
pub mod synthetic;

pub use fig1::fig1;
pub use synthetic::{chain, cycle, grid, small_mixed, transfer_network, TransferNetworkConfig};
