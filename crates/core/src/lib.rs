//! GPML — the Graph Pattern Matching Language shared by ISO GQL and
//! SQL/PGQ, as presented in *Graph Pattern Matching in GQL and SQL/PGQ*
//! (Deutsch et al., SIGMOD 2022).
//!
//! This crate is the paper's primary contribution: the pattern language
//! (AST + concrete-syntax printer), the static analysis that guarantees
//! termination (§5) and enforces the variable discipline (§4.4, §4.6), a
//! compiled query-plan layer, and two interchangeable evaluation engines:
//!
//! * [`plan`] — the prepare-once/execute-many layer: [`plan::prepare`]
//!   lowers a pattern (normalize → analyze → compile NFAs → join/select/
//!   filter stages) into a graph-independent [`plan::PreparedQuery`] that
//!   serves any number of executions;
//! * [`eval`] — the production engine: a single-pass matcher with
//!   restrictor pruning carried on the search frontier and selector-driven
//!   breadth-first search with dominance pruning for unbounded
//!   quantifiers. [`eval::evaluate`] is a thin one-shot wrapper over the
//!   plan layer;
//! * [`baseline`] — the literal §6 execution model (normalization →
//!   expansion into rigid patterns → per-part matching → equi-join →
//!   reduction and deduplication), used as a test oracle and benchmark
//!   baseline.
//!
//! Both engines produce the same *set of reduced path bindings* for every
//! valid query; property tests in the workspace assert this equivalence on
//! random graphs and patterns.
//!
//! # Quick example
//!
//! ```
//! use gpml_core::ast::*;
//! use gpml_core::eval::{evaluate, EvalOptions};
//! use property_graph::{Endpoints, PropertyGraph, Value};
//!
//! let mut g = PropertyGraph::new();
//! let a = g.add_node("a1", ["Account"], [("isBlocked", Value::str("no"))]);
//! let b = g.add_node("a2", ["Account"], [("isBlocked", Value::str("yes"))]);
//! g.add_edge("t1", Endpoints::directed(a, b), ["Transfer"], []);
//!
//! // MATCH (x:Account WHERE x.isBlocked='no')-[t:Transfer]->(y)
//! let pattern = GraphPattern::single(PathPattern::concat(vec![
//!     PathPattern::Node(
//!         NodePattern::var("x")
//!             .with_label(LabelExpr::label("Account"))
//!             .with_predicate(Expr::prop("x", "isBlocked").eq(Expr::lit("no"))),
//!     ),
//!     PathPattern::Edge(
//!         EdgePattern::any(Direction::Right)
//!             .with_var("t")
//!             .with_label(LabelExpr::label("Transfer")),
//!     ),
//!     PathPattern::Node(NodePattern::var("y")),
//! ]));
//!
//! let result = evaluate(&g, &pattern, &EvalOptions::default()).unwrap();
//! assert_eq!(result.len(), 1);
//! ```

#![warn(missing_docs)]

pub mod analysis;
pub mod ast;
pub mod baseline;
pub mod binding;
pub mod error;
pub mod eval;
pub mod normalize;
pub mod params;
pub mod plan;

pub use analysis::{analyze, Analysis, VarClass, VarKind};
pub use ast::{
    AggArg, AggFunc, ArithOp, CmpOp, Direction, EdgePattern, Expr, GraphPattern, LabelExpr,
    NodePattern, PathPattern, PathPatternExpr, Quantifier, Restrictor, Selector,
};
pub use binding::{BoundValue, MatchRow, MatchSet, PathBinding};
pub use error::{Error, Result};
pub use eval::flat::{FlatProgram, PlanDecodeError, PLAN_FORMAT_VERSION};
pub use eval::{evaluate, EvalOptions, MatchMode};
pub use params::{ParamType, Params};
pub use plan::{prepare, ExecutablePlan, PreparedQuery};
