//! Normalization — the first step of the §6 execution model.
//!
//! Normalization (§6.2) does three things:
//!
//! 1. makes every concatenation *consistent*: each sequence of node and edge
//!    patterns starts and ends with a node pattern and alternates between
//!    node and edge patterns (anonymous node patterns are inserted where
//!    needed, and quantified bare edge patterns receive anonymous node
//!    patterns on both sides);
//! 2. expands syntactic sugar (`+` → `{1,}`, `*` → `{0,}` — already encoded
//!    numerically in [`Quantifier`]); and
//! 3. introduces a fresh variable into every anonymous node and edge
//!    pattern. Fresh node variables are named `□1, □2, ...` and fresh edge
//!    variables `−1, −2, ...`, following the paper's notation; the `□`/`−`
//!    prefix is what marks a variable as anonymous throughout the engine.

use crate::ast::{GraphPattern, NodePattern, PathPattern, PathPatternExpr, Quantifier};

/// Prefix of fresh anonymous node variables.
pub const ANON_NODE_PREFIX: &str = "\u{25A1}"; // □
/// Prefix of fresh anonymous edge variables.
pub const ANON_EDGE_PREFIX: &str = "\u{2212}"; // −

/// True if `name` was generated for an anonymous node or edge pattern.
pub fn is_anonymous(name: &str) -> bool {
    name.starts_with(ANON_NODE_PREFIX) || name.starts_with(ANON_EDGE_PREFIX)
}

/// True if `name` was generated for an anonymous *node* pattern.
pub fn is_anonymous_node(name: &str) -> bool {
    name.starts_with(ANON_NODE_PREFIX)
}

/// Normalizes a whole graph pattern. Fresh-variable numbering is global
/// across all path patterns so anonymous variables never collide (and hence
/// never join).
pub fn normalize(pattern: &GraphPattern) -> GraphPattern {
    let mut n = Normalizer::default();
    GraphPattern {
        paths: pattern
            .paths
            .iter()
            .map(|p| PathPatternExpr {
                selector: p.selector.clone(),
                restrictor: p.restrictor,
                path_var: p.path_var.clone(),
                pattern: n.normalize_path(&p.pattern),
            })
            .collect(),
        where_clause: pattern.where_clause.clone(),
    }
}

/// Normalizes a single path pattern in isolation (used by tests and by the
/// baseline engine).
pub fn normalize_path(pattern: &PathPattern) -> PathPattern {
    Normalizer::default().normalize_path(pattern)
}

#[derive(Default)]
struct Normalizer {
    next_node: u32,
    next_edge: u32,
}

impl Normalizer {
    fn fresh_node(&mut self) -> String {
        self.next_node += 1;
        format!("{ANON_NODE_PREFIX}{}", self.next_node)
    }

    fn fresh_edge(&mut self) -> String {
        self.next_edge += 1;
        format!("{ANON_EDGE_PREFIX}{}", self.next_edge)
    }

    fn anon_node(&mut self) -> PathPattern {
        PathPattern::Node(NodePattern {
            var: Some(self.fresh_node()),
            label: None,
            predicate: None,
        })
    }

    fn normalize_path(&mut self, p: &PathPattern) -> PathPattern {
        let items = self.normalize_seq(p);
        PathPattern::concat(items)
    }

    /// Normalizes `p` into a consistent sequence of factors.
    fn normalize_seq(&mut self, p: &PathPattern) -> Vec<PathPattern> {
        let mut items = Vec::new();
        self.flatten(p, &mut items);
        // Insert anonymous node patterns so that edges are always framed by
        // node positions: before an edge at the start of the sequence, after
        // an edge at the end, and between two consecutive edges.
        let mut out = Vec::with_capacity(items.len() + 2);
        let mut prev_was_edge = true; // sequence start behaves like "after an edge"
        for item in items {
            let is_edge = matches!(item, PathPattern::Edge(_));
            if is_edge && prev_was_edge {
                out.push(self.anon_node());
            }
            prev_was_edge = is_edge;
            out.push(item);
        }
        if prev_was_edge {
            out.push(self.anon_node());
        }
        out
    }

    /// Recursively normalizes one factor and flattens nested concatenations.
    fn flatten(&mut self, p: &PathPattern, out: &mut Vec<PathPattern>) {
        match p {
            PathPattern::Concat(parts) => {
                for part in parts {
                    self.flatten(part, out);
                }
            }
            PathPattern::Node(n) => {
                let mut n = n.clone();
                if n.var.is_none() {
                    n.var = Some(self.fresh_node());
                }
                out.push(PathPattern::Node(n));
            }
            PathPattern::Edge(e) => {
                let mut e = e.clone();
                if e.var.is_none() {
                    e.var = Some(self.fresh_edge());
                }
                out.push(PathPattern::Edge(e));
            }
            PathPattern::Paren {
                restrictor,
                inner,
                predicate,
            } => {
                out.push(PathPattern::Paren {
                    restrictor: *restrictor,
                    inner: Box::new(self.normalize_path(inner)),
                    predicate: predicate.clone(),
                });
            }
            PathPattern::Quantified { inner, quantifier } => {
                out.push(PathPattern::Quantified {
                    inner: Box::new(self.normalize_quantifiable(inner)),
                    quantifier: *quantifier,
                });
            }
            PathPattern::Questioned(inner) => {
                out.push(PathPattern::Questioned(Box::new(
                    self.normalize_quantifiable(inner),
                )));
            }
            PathPattern::Union(branches) => {
                out.push(PathPattern::Union(
                    branches.iter().map(|b| self.normalize_path(b)).collect(),
                ));
            }
            PathPattern::Alternation(branches) => {
                out.push(PathPattern::Alternation(
                    branches.iter().map(|b| self.normalize_path(b)).collect(),
                ));
            }
        }
    }

    /// The body of a quantifier or `?` must be a parenthesized consistent
    /// path pattern; a quantified bare edge pattern receives anonymous node
    /// patterns on both sides (§4.4, §6.2).
    fn normalize_quantifiable(&mut self, inner: &PathPattern) -> PathPattern {
        match inner {
            PathPattern::Paren {
                restrictor,
                inner,
                predicate,
            } => PathPattern::Paren {
                restrictor: *restrictor,
                inner: Box::new(self.normalize_path(inner)),
                predicate: predicate.clone(),
            },
            other => PathPattern::Paren {
                restrictor: None,
                inner: Box::new(self.normalize_path(other)),
                predicate: None,
            },
        }
    }
}

/// The quantifier that `?` abbreviates — `{0,1}`, except for the variable
/// classification difference discussed in §4.6.
pub fn question_mark_bounds() -> Quantifier {
    Quantifier::range(0, Some(1))
}

// Re-export for convenience in doc examples.
#[allow(unused_imports)]
use crate::ast::Direction;
#[allow(unused_imports)]
use crate::ast::LabelExpr;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Direction, EdgePattern, LabelExpr, NodePattern, PathPattern};

    fn edge(dir: Direction) -> PathPattern {
        PathPattern::Edge(EdgePattern::any(dir))
    }

    fn node(v: &str) -> PathPattern {
        PathPattern::Node(NodePattern::var(v))
    }

    #[test]
    fn bare_edge_gets_framed_by_anonymous_nodes() {
        // MATCH -[e]->  ⇒  (□1)-[e]->(□2)
        let p = PathPattern::Edge(EdgePattern::any(Direction::Right).with_var("e"));
        let n = normalize_path(&p);
        assert_eq!(n.to_string(), "(□1)-[e]->(□2)");
    }

    #[test]
    fn consecutive_edges_get_separated() {
        // (x)->->(y) ⇒ (x)->(□1)->(y); anonymous edges also get variables.
        let p = PathPattern::concat(vec![
            node("x"),
            edge(Direction::Right),
            edge(Direction::Right),
            node("y"),
        ]);
        let n = normalize_path(&p);
        assert_eq!(n.to_string(), "(x)-[−1]->(□1)-[−2]->(y)");
    }

    #[test]
    fn quantified_bare_edge_is_wrapped() {
        // -[b:Transfer]->{1,}  ⇒  [(□1)-[b:Transfer]->(□2)]{1,}
        let p = PathPattern::Edge(
            EdgePattern::any(Direction::Right)
                .with_var("b")
                .with_label(LabelExpr::label("Transfer")),
        )
        .quantified(Quantifier::plus());
        let n = normalize_path(&p);
        assert_eq!(n.to_string(), "[(□1)-[b:Transfer]->(□2)]+");
    }

    #[test]
    fn section_6_2_shape() {
        // (a)[-[b]->]+(a)[->(c) | ->(c)] gets the paper's normalized shape:
        // anonymous nodes inside the quantifier, fresh edge vars in branches.
        let quant = PathPattern::Edge(EdgePattern::any(Direction::Right).with_var("b"))
            .quantified(Quantifier::plus());
        let branch = |lbl: &str| {
            PathPattern::concat(vec![
                edge(Direction::Right),
                PathPattern::Node(NodePattern::var("c").with_label(LabelExpr::label(lbl))),
            ])
        };
        let p = PathPattern::concat(vec![
            node("a"),
            quant,
            node("a"),
            PathPattern::Union(vec![branch("City"), branch("Country")]),
        ]);
        let n = normalize_path(&p);
        assert_eq!(
            n.to_string(),
            "(a)[(□1)-[b]->(□2)]+(a)[(□3)-[−1]->(c:City) | (□4)-[−2]->(c:Country)]"
        );
    }

    #[test]
    fn union_branches_are_normalized_independently() {
        let p = PathPattern::Union(vec![edge(Direction::Right), edge(Direction::Left)]);
        let n = normalize_path(&p);
        assert_eq!(n.to_string(), "(□1)-[−1]->(□2) | (□3)<-[−2]-(□4)");
    }

    #[test]
    fn anonymity_predicates() {
        assert!(is_anonymous("□12"));
        assert!(is_anonymous("−3"));
        assert!(is_anonymous_node("□12"));
        assert!(!is_anonymous_node("−3"));
        assert!(!is_anonymous("x"));
        assert!(!is_anonymous("box"));
    }

    #[test]
    fn normalization_is_idempotent() {
        let p = PathPattern::concat(vec![
            node("x"),
            edge(Direction::Any),
            PathPattern::Edge(EdgePattern::any(Direction::Right)).quantified(Quantifier::star()),
            node("y"),
        ]);
        let once = normalize_path(&p);
        let twice = normalize_path(&once);
        assert_eq!(once, twice);
    }

    #[test]
    fn fresh_names_are_global_across_path_patterns() {
        let g = GraphPattern {
            paths: vec![
                PathPatternExpr::plain(edge(Direction::Right)),
                PathPatternExpr::plain(edge(Direction::Right)),
            ],
            where_clause: None,
        };
        let n = normalize(&g);
        let s0 = n.paths[0].pattern.to_string();
        let s1 = n.paths[1].pattern.to_string();
        assert_eq!(s0, "(□1)-[−1]->(□2)");
        assert_eq!(s1, "(□3)-[−2]->(□4)");
    }
}
