//! Bindings: the values GPML variables take in a match.
//!
//! Executing a GPML statement results in a set, or multiset, of *reduced
//! path bindings* (§6). A path binding maps each variable to a graph
//! element (singletons), to a list of elements (group variables, one entry
//! per quantifier iteration), or to a whole path (path variables).
//!
//! The engines in this crate represent a matched path pattern as a
//! [`PathBinding`]: the matched walk plus the reduced variable map. The
//! paper's *reduction* step (stripping iteration superscripts and merging
//! anonymous variables, §6.5) corresponds to [`PathBinding::reduce`]; its
//! *deduplication* step corresponds to collecting reduced bindings into a
//! `BTreeSet`, which both engines do before applying selectors.

use std::collections::BTreeMap;
use std::fmt;

use property_graph::{EdgeId, ElementId, NodeId, Path, PropertyGraph};

use crate::normalize::is_anonymous;

/// The value a variable is bound to in one match.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum BoundValue {
    /// A singleton node variable.
    Node(NodeId),
    /// A singleton edge variable.
    Edge(EdgeId),
    /// A group node variable: one node per iteration of the enclosing
    /// quantifier, in iteration order.
    NodeGroup(Vec<NodeId>),
    /// A group edge variable: one edge per iteration, in iteration order.
    EdgeGroup(Vec<EdgeId>),
    /// A path variable (`p = ...`).
    Path(Path),
}

impl BoundValue {
    /// The element, if this is a singleton binding.
    pub fn as_element(&self) -> Option<ElementId> {
        match self {
            BoundValue::Node(n) => Some(ElementId::Node(*n)),
            BoundValue::Edge(e) => Some(ElementId::Edge(*e)),
            _ => None,
        }
    }

    /// The group members, if this is a group binding.
    pub fn as_group(&self) -> Option<Vec<ElementId>> {
        match self {
            BoundValue::NodeGroup(ns) => Some(ns.iter().copied().map(ElementId::Node).collect()),
            BoundValue::EdgeGroup(es) => Some(es.iter().copied().map(ElementId::Edge).collect()),
            _ => None,
        }
    }

    /// The bound path, if this is a path binding.
    pub fn as_path(&self) -> Option<&Path> {
        match self {
            BoundValue::Path(p) => Some(p),
            _ => None,
        }
    }

    /// True for `Node`/`Edge` singleton bindings.
    pub fn is_singleton(&self) -> bool {
        matches!(self, BoundValue::Node(_) | BoundValue::Edge(_))
    }

    /// Renders using external element names from `g`.
    pub fn display<'a>(&'a self, g: &'a PropertyGraph) -> BoundValueDisplay<'a> {
        BoundValueDisplay {
            value: self,
            graph: g,
        }
    }
}

/// Helper returned by [`BoundValue::display`].
pub struct BoundValueDisplay<'a> {
    value: &'a BoundValue,
    graph: &'a PropertyGraph,
}

impl fmt::Display for BoundValueDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.value {
            BoundValue::Node(n) => write!(f, "{}", self.graph.node(*n).name),
            BoundValue::Edge(e) => write!(f, "{}", self.graph.edge(*e).name),
            BoundValue::NodeGroup(ns) => {
                write!(f, "[")?;
                for (i, n) in ns.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{}", self.graph.node(*n).name)?;
                }
                write!(f, "]")
            }
            BoundValue::EdgeGroup(es) => {
                write!(f, "[")?;
                for (i, e) in es.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{}", self.graph.edge(*e).name)?;
                }
                write!(f, "]")
            }
            BoundValue::Path(p) => write!(f, "{}", p.display(self.graph)),
        }
    }
}

/// One matched path pattern: the walk plus the variable map.
///
/// `alt_marks` records which branch of each multiset alternation (`|+|`)
/// the match came through; it participates in deduplication so alternation
/// keeps multiplicities while plain union (`|`) does not (§4.5).
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PathBinding {
    /// The matched walk through the graph.
    pub path: Path,
    /// Variable bindings, including the path variable when declared.
    pub bindings: BTreeMap<String, BoundValue>,
    /// Multiset-alternation provenance marks, outermost first.
    pub alt_marks: Vec<u32>,
}

impl PathBinding {
    /// A binding for a zero-length walk at `start` with no variables.
    pub fn start_at(start: NodeId) -> PathBinding {
        PathBinding {
            path: Path::single(start),
            bindings: BTreeMap::new(),
            alt_marks: Vec::new(),
        }
    }

    /// The paper's reduction step (§6.5): drops bindings of anonymous
    /// variables (`□i`, `−i`); the elements they matched are still present
    /// in `path`, which is what makes deduplication element-accurate.
    pub fn reduce(mut self) -> PathBinding {
        self.bindings.retain(|name, _| !is_anonymous(name));
        self
    }

    /// Looks a variable up.
    pub fn get(&self, var: &str) -> Option<&BoundValue> {
        self.bindings.get(var)
    }

    /// Renders the binding as a two-row table in the paper's style, e.g.
    /// `a↦a4, b↦[t4,t5,t2,t3], c↦c2`.
    pub fn display<'a>(&'a self, g: &'a PropertyGraph) -> PathBindingDisplay<'a> {
        PathBindingDisplay {
            binding: self,
            graph: g,
        }
    }
}

/// Helper returned by [`PathBinding::display`].
pub struct PathBindingDisplay<'a> {
    binding: &'a PathBinding,
    graph: &'a PropertyGraph,
}

impl fmt::Display for PathBindingDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, (var, value)) in self.binding.bindings.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{var}\u{21A6}{}", value.display(self.graph))?;
        }
        Ok(())
    }
}

/// One row of a final match result: bindings of all exported variables of
/// all path patterns, after the cross-pattern join.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MatchRow {
    /// The bindings, keyed by variable name.
    pub values: BTreeMap<String, BoundValue>,
}

impl MatchRow {
    /// An empty row (unit of the cross-pattern join).
    pub fn empty() -> MatchRow {
        MatchRow {
            values: BTreeMap::new(),
        }
    }

    /// Looks a variable up.
    pub fn get(&self, var: &str) -> Option<&BoundValue> {
        self.values.get(var)
    }
}

/// The result of evaluating a graph pattern: an ordered, deduplicated (or
/// multiplicity-preserving, for `|+|`) collection of rows.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MatchSet {
    /// The result rows, in engine output order.
    pub rows: Vec<MatchRow>,
}

impl MatchSet {
    /// Number of result rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when there are no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Iterates over rows.
    pub fn iter(&self) -> impl Iterator<Item = &MatchRow> {
        self.rows.iter()
    }

    /// Projects one variable across all rows.
    pub fn column(&self, var: &str) -> Vec<Option<&BoundValue>> {
        self.rows.iter().map(|r| r.get(var)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use property_graph::{Endpoints, PropertyGraph};

    fn tiny() -> (PropertyGraph, NodeId, NodeId, EdgeId) {
        let mut g = PropertyGraph::new();
        let a = g.add_node("a1", ["Account"], []);
        let b = g.add_node("a2", ["Account"], []);
        let t = g.add_edge("t1", Endpoints::directed(a, b), ["Transfer"], []);
        (g, a, b, t)
    }

    #[test]
    fn reduction_strips_anonymous_variables() {
        let (_, a, b, t) = tiny();
        let mut binding = PathBinding::start_at(a);
        binding.path.push(t, b);
        binding.bindings.insert("x".into(), BoundValue::Node(a));
        binding
            .bindings
            .insert("\u{25A1}1".into(), BoundValue::Node(b));
        binding
            .bindings
            .insert("\u{2212}1".into(), BoundValue::Edge(t));
        let reduced = binding.reduce();
        assert_eq!(reduced.bindings.len(), 1);
        assert!(reduced.get("x").is_some());
        // The path still carries the anonymous elements.
        assert_eq!(reduced.path.len(), 1);
    }

    #[test]
    fn alt_marks_distinguish_bindings() {
        let (_, a, _, _) = tiny();
        let p1 = PathBinding::start_at(a);
        let mut p2 = PathBinding::start_at(a);
        p2.alt_marks.push(0);
        assert_ne!(p1, p2);
    }

    #[test]
    fn bound_value_accessors() {
        let (_, a, b, t) = tiny();
        assert_eq!(BoundValue::Node(a).as_element(), Some(ElementId::Node(a)));
        assert_eq!(BoundValue::Edge(t).as_element(), Some(ElementId::Edge(t)));
        assert!(BoundValue::NodeGroup(vec![a, b]).as_element().is_none());
        assert_eq!(
            BoundValue::EdgeGroup(vec![t]).as_group(),
            Some(vec![ElementId::Edge(t)])
        );
        assert!(BoundValue::Node(a).is_singleton());
        assert!(!BoundValue::Path(Path::single(a)).is_singleton());
    }

    #[test]
    fn display_uses_external_names() {
        let (g, a, b, t) = tiny();
        assert_eq!(BoundValue::Node(a).display(&g).to_string(), "a1");
        assert_eq!(
            BoundValue::EdgeGroup(vec![t]).display(&g).to_string(),
            "[t1]"
        );
        assert_eq!(
            BoundValue::NodeGroup(vec![a, b]).display(&g).to_string(),
            "[a1,a2]"
        );
        let p = Path::new(vec![a, b], vec![t]);
        assert_eq!(
            BoundValue::Path(p).display(&g).to_string(),
            "path(a1,t1,a2)"
        );
    }
}
