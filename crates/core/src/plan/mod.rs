//! Compiled query plans — the prepare-once / execute-many split.
//!
//! [`prepare`] lowers a [`GraphPattern`] into a flat, inspectable
//! [`ExecutablePlan`] wrapped in a [`PreparedQuery`] that can be executed
//! against any number of graphs without repeating the per-query work. The
//! lowering pipeline mirrors the §6 execution model, but runs it once:
//!
//! 1. **Mode rewrite** — under [`MatchMode::GsqlDefault`], unbounded
//!    quantifiers with neither selector nor restrictor implicitly receive
//!    `ALL SHORTEST` (§3);
//! 2. **Normalize** (§6.2) — concatenations are made consistent and every
//!    anonymous element pattern receives a fresh variable;
//! 3. **Analyze** (§4.4, §4.6, §5) — variables are classified, the join
//!    discipline is enforced, and non-terminating patterns are rejected;
//! 4. **Compile** — each path pattern is compiled into its NFA (one
//!    `PathStage` per comma-separated path pattern) and its pruning mode
//!    (exhaustive vs. selector-driven dominance-pruned search) is resolved
//!    graph-independently;
//! 5. **Join / select / filter stages** — the explicit join graph over
//!    shared unconditional singleton variables is recorded, selectors are
//!    attached per stage, and every `EXISTS` subquery of the final `WHERE`
//!    postfilter is recursively prepared into its own subplan.
//!
//! Executing the plan then only performs the graph-dependent work: the
//! [`cost`] model consults the graph's statistics catalog to order the
//! stages (cheapest connected stage first), each stage runs its
//! product-automaton search, §6.5 reduction/deduplication, and §5.1
//! selector application, the per-stage results merge through hash joins
//! on the plan's join keys (see `eval::JoinState`), and the
//! postfilter runs last. Stages whose accumulated join is already empty
//! are skipped entirely.
//!
//! [`eval::evaluate`](crate::eval::evaluate) is a thin wrapper over
//! `prepare(..)?.execute(..)`; front-ends that see the same query text
//! repeatedly (the GQL session, SQL/PGQ `GRAPH_TABLE`, the CLI REPL)
//! retain the [`PreparedQuery`] — and cache it in a [`cache::PlanLru`]
//! keyed by `(query text, EvalOptions)` — to skip straight to execution.
//!
//! The plan structure is deliberately flat and inspectable (see the
//! [`ExecutablePlan`] `Display` impl and [`PreparedQuery::explain_for`],
//! surfaced as `--explain` in the CLI).
//!
//! With [`EvalOptions::threads`] ≥ 2 (or auto-detected parallelism on a
//! large enough graph), execution runs the per-stage searches on a scoped
//! worker pool — partitioned by start node, kicked off eagerly in cost
//! order, merged deterministically as results land — and stays bit-for-bit
//! identical to the sequential path (see `PreparedQuery::execute_parallel`
//! internals and `eval::pool`).

pub mod cache;
pub mod cost;

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;

use property_graph::{GraphStats, PropertyGraph};

use crate::analysis::{analyze, collect_exists, Analysis, VarClass};
use crate::ast::{Expr, GraphPattern, PathPattern, PathPatternExpr, Selector};
use crate::binding::{MatchSet, PathBinding};
use crate::error::{Error, Result};
use crate::eval::flat::{FlatMatcher, FlatProgram};
use crate::eval::matcher::{self, Matcher, Nfa, PruneMode, SemiJoinFilters};
use crate::eval::{pool, selector, EvalOptions, ExecProfile, JoinState, MatchMode, StageCounters};
use crate::normalize::normalize;
use crate::params::{value_type_name, ParamType, Params};

pub use cache::{CacheStats, PlanLru, SharedPlanLru, DEFAULT_PLAN_CACHE_CAPACITY};
pub use cost::{CostReport, CostStep, JoinAlgo, SemiJoinDecision};

/// Lowers `pattern` into an executable plan under `opts`.
///
/// All per-query work — mode rewriting, normalization, static analysis,
/// NFA compilation, join-graph construction, and `EXISTS` subplanning —
/// happens here, exactly once. The result is graph-independent: one
/// [`PreparedQuery`] may be executed against any number of graphs, in any
/// order, with independent results.
///
/// ```
/// use gpml_core::ast::*;
/// use gpml_core::eval::EvalOptions;
/// use gpml_core::plan::prepare;
/// use property_graph::{Endpoints, PropertyGraph};
///
/// // MATCH (x)-[e]->(y): prepare once ...
/// let pattern = GraphPattern::single(PathPattern::concat(vec![
///     PathPattern::Node(NodePattern::var("x")),
///     PathPattern::Edge(EdgePattern::any(Direction::Right).with_var("e")),
///     PathPattern::Node(NodePattern::var("y")),
/// ]));
/// let query = prepare(&pattern, &EvalOptions::default())?;
///
/// // ... execute against as many graphs as you like.
/// let mut g = PropertyGraph::new();
/// let a = g.add_node("a", ["N"], []);
/// let b = g.add_node("b", ["N"], []);
/// g.add_edge("ab", Endpoints::directed(a, b), ["T"], []);
/// assert_eq!(query.execute(&g)?.len(), 1);
/// assert_eq!(query.plan().stage_count(), 1);
/// # Ok::<(), gpml_core::Error>(())
/// ```
pub fn prepare(pattern: &GraphPattern, opts: &EvalOptions) -> Result<PreparedQuery> {
    let mut pattern = pattern.clone();
    if opts.mode == MatchMode::GsqlDefault {
        apply_gsql_default(&mut pattern);
    }
    let normalized = normalize(&pattern);
    let analysis = analyze(&normalized)?;

    let mut stages = Vec::with_capacity(normalized.paths.len());
    for expr in &normalized.paths {
        stages.push(PathStage::lower(expr)?);
    }

    // The explicit join graph: shared *unconditional singleton* variables
    // between stage pairs are the only implicit equi-join keys the
    // analysis admits across path patterns (§4.6).
    let mut joins = Vec::new();
    for i in 0..stages.len() {
        for j in i + 1..stages.len() {
            let on: Vec<String> = stages[i]
                .vars
                .intersection(&stages[j].vars)
                .filter(|v| {
                    analysis
                        .var(v)
                        .is_some_and(|info| info.class == VarClass::Singleton)
                })
                .cloned()
                .collect();
            if !on.is_empty() {
                joins.push(JoinEdge {
                    left: i,
                    right: j,
                    on,
                });
            }
        }
    }

    // Prepare every EXISTS subquery of the postfilter as its own subplan,
    // so repeated executions skip the subquery's analysis and compilation
    // too. Deliberately eager: a one-shot query whose match is empty pays
    // for subplans it never runs, but execute latency stays flat — no
    // first-row compilation jitter. (Analysis already guaranteed the
    // subpatterns are well-formed.)
    let mut exists = ExistsPlans::default();
    if let Some(post) = &normalized.where_clause {
        let mut subs = Vec::new();
        collect_exists(post, &mut subs);
        for sub in subs {
            if !exists.plans.contains_key(sub) {
                exists.plans.insert(sub.clone(), prepare(sub, opts)?);
            }
        }
    }

    // Parameter slots: every `$name` placeholder in any predicate of the
    // normalized pattern (prefilters, the postfilter, and EXISTS
    // subpatterns), together with the value-type expectations its usage
    // contexts imply. The slots are what makes the plan a reusable
    // *skeleton*: executions bind values against them without touching
    // the compiled stages.
    let mut param_slots = BTreeMap::new();
    collect_graph_params(&normalized, &mut param_slots);

    Ok(PreparedQuery {
        opts: opts.clone(),
        plan: ExecutablePlan {
            normalized,
            analysis,
            stages,
            joins,
            exists,
            params: param_slots,
        },
    })
}

// ---------------------------------------------------------------------------
// Parameter slot collection
// ---------------------------------------------------------------------------

/// The slot map: parameter name → the type expectations its usages imply.
pub(crate) type ParamSlots = BTreeMap<String, BTreeSet<ParamType>>;

pub(crate) fn collect_graph_params(gp: &GraphPattern, out: &mut ParamSlots) {
    for p in &gp.paths {
        collect_path_params(&p.pattern, out);
    }
    if let Some(post) = &gp.where_clause {
        collect_expr_params(post, out);
    }
}

fn collect_path_params(p: &PathPattern, out: &mut ParamSlots) {
    match p {
        PathPattern::Node(n) => {
            if let Some(pred) = &n.predicate {
                collect_expr_params(pred, out);
            }
        }
        PathPattern::Edge(e) => {
            if let Some(pred) = &e.predicate {
                collect_expr_params(pred, out);
            }
        }
        PathPattern::Concat(parts) => parts.iter().for_each(|x| collect_path_params(x, out)),
        PathPattern::Paren {
            inner, predicate, ..
        } => {
            collect_path_params(inner, out);
            if let Some(pred) = predicate {
                collect_expr_params(pred, out);
            }
        }
        PathPattern::Quantified { inner, .. } | PathPattern::Questioned(inner) => {
            collect_path_params(inner, out)
        }
        PathPattern::Union(bs) | PathPattern::Alternation(bs) => {
            bs.iter().for_each(|x| collect_path_params(x, out))
        }
    }
}

/// Records every `$name` in `e` into `out`, inferring type expectations
/// from usage: arithmetic operands must be numbers, and a comparison
/// against a literal expects the literal's type.
pub(crate) fn collect_expr_params(e: &Expr, out: &mut ParamSlots) {
    let mut note = |name: &str, t: Option<ParamType>| {
        let entry = out.entry(name.to_owned()).or_default();
        if let Some(t) = t {
            entry.insert(t);
        }
    };
    match e {
        Expr::Parameter(name) => note(name, None),
        Expr::Literal(_) | Expr::Var(_) | Expr::Property(..) => {}
        Expr::Not(i) | Expr::IsNull(i, _) => collect_expr_params(i, out),
        Expr::And(a, b) | Expr::Or(a, b) => {
            collect_expr_params(a, out);
            collect_expr_params(b, out);
        }
        Expr::Cmp(_, a, b) => {
            // A comparison against a literal pins the parameter's type.
            if let (Expr::Parameter(name), Expr::Literal(v))
            | (Expr::Literal(v), Expr::Parameter(name)) = (a.as_ref(), b.as_ref())
            {
                note(name, literal_expectation(v));
            }
            collect_expr_params(a, out);
            collect_expr_params(b, out);
        }
        Expr::Arith(_, a, b) => {
            for side in [a.as_ref(), b.as_ref()] {
                if let Expr::Parameter(name) = side {
                    note(name, Some(ParamType::Number));
                }
            }
            collect_expr_params(a, out);
            collect_expr_params(b, out);
        }
        Expr::IsDirected(_)
        | Expr::IsSourceOf { .. }
        | Expr::IsDestinationOf { .. }
        | Expr::Same(_)
        | Expr::AllDifferent(_)
        | Expr::Aggregate { .. } => {}
        Expr::Exists(gp) => collect_graph_params(gp, out),
    }
}

fn literal_expectation(v: &property_graph::Value) -> Option<ParamType> {
    use property_graph::Value;
    match v {
        Value::Int(_) | Value::Float(_) => Some(ParamType::Number),
        Value::Str(_) => Some(ParamType::Text),
        Value::Bool(_) => Some(ParamType::Boolean),
        Value::Null => None,
    }
}

/// Validates `params` against the slot map: every slot bound, no extra
/// bindings, every value compatible with its slot's inferred type
/// expectations.
pub(crate) fn check_params(slots: &ParamSlots, params: &Params) -> Result<()> {
    for (name, expects) in slots {
        let Some(value) = params.get(name) else {
            return Err(Error::UnboundParameter { name: name.clone() });
        };
        for t in expects {
            if !t.admits(value) {
                return Err(Error::ParameterTypeMismatch {
                    name: name.clone(),
                    expected: t.describe(),
                    got: value_type_name(value),
                });
            }
        }
    }
    for name in params.names() {
        if !slots.contains_key(name) {
            return Err(Error::UnusedParameter {
                name: name.to_owned(),
            });
        }
    }
    Ok(())
}

/// A compiled query: an [`ExecutablePlan`] plus the options it was
/// prepared under. Execute it against any number of graphs.
#[derive(Clone)]
pub struct PreparedQuery {
    opts: EvalOptions,
    plan: ExecutablePlan,
}

impl PreparedQuery {
    /// Runs the plan against `graph`.
    ///
    /// Only graph-dependent work happens here; the compiled stages are
    /// reused unchanged, and executions against different graphs are
    /// fully independent. Per execution, the cost model consults the
    /// graph's statistics catalog to pick the stage order (cheapest
    /// connected stage first — see [`cost`]), each stage's bindings are
    /// merged into the accumulated rows through a hash join on the plan's
    /// join keys (nested loop when keys are absent or disabled), and the
    /// remaining stages are skipped entirely once the accumulation is
    /// empty. Results are identical to declaration-order nested-loop
    /// execution up to row order.
    pub fn execute(&self, graph: &PropertyGraph) -> Result<MatchSet> {
        self.execute_with(graph, &Params::new())
    }

    /// Runs the plan against `graph` with `params` bound to the query's
    /// `$name` placeholders — the *bind* step of prepare → bind →
    /// execute.
    ///
    /// Bindings are validated up front against the plan's parameter
    /// slots: a declared-but-unbound parameter raises
    /// [`Error::UnboundParameter`], a binding no placeholder consumes
    /// raises [`Error::UnusedParameter`], and a value contradicting the
    /// parameter's usage (e.g. a string where arithmetic needs a number)
    /// raises [`Error::ParameterTypeMismatch`]. The compiled stages are
    /// shared by every binding; with the statistics catalog available,
    /// stage ordering re-estimates predicate selectivity using the bound
    /// values, so the optimizer benefits from constants it could not see
    /// at prepare time.
    pub fn execute_with(&self, graph: &PropertyGraph, params: &Params) -> Result<MatchSet> {
        check_params(&self.plan.params, params)?;
        self.execute_bound(graph, params)
    }

    /// [`Self::execute_with`], additionally tallying per-stage execution
    /// counters (nodes expanded, edges traversed, rows pruned by
    /// semi-join filters) into `profile`.
    ///
    /// Create the profile with [`ExecProfile::new`] sized to
    /// [`ExecutablePlan::stage_count`]; its slots are indexed by
    /// *declaration* stage index, matching the EXPLAIN rendering, however
    /// the cost model reorders execution. Counters are cumulative across
    /// executions sharing a profile.
    pub fn execute_with_profile(
        &self,
        graph: &PropertyGraph,
        params: &Params,
        profile: &ExecProfile,
    ) -> Result<MatchSet> {
        check_params(&self.plan.params, params)?;
        self.execute_inner(graph, params, Some(profile))
    }

    /// The unvalidated execution path shared by [`Self::execute_with`]
    /// and prepared `EXISTS` subplans (whose parameters were validated as
    /// part of the enclosing plan's slot set).
    pub(crate) fn execute_bound(&self, graph: &PropertyGraph, params: &Params) -> Result<MatchSet> {
        self.execute_inner(graph, params, None)
    }

    fn execute_inner(
        &self,
        graph: &PropertyGraph,
        params: &Params,
        profile: Option<&ExecProfile>,
    ) -> Result<MatchSet> {
        let stats = graph.stats();
        // One estimate pass feeds both the stage reorderer and the
        // semi-join pushdown decisions.
        let est = cost::estimates(&self.plan, stats, true, params);
        let order: Vec<usize> = if self.opts.reorder_stages {
            cost::order_from(&est, &self.plan, stats)
        } else {
            (0..self.plan.stages.len()).collect()
        };
        let threads = self.opts.effective_threads(graph.node_count());
        if threads > 1 && !order.is_empty() && graph.node_count() > 0 {
            return self.execute_parallel(graph, &order, threads, params, &est, profile);
        }
        let mut join = JoinState::new(self.opts.isomorphism);
        let mut placed: Vec<usize> = Vec::with_capacity(order.len());
        for &i in &order {
            if join.is_empty() && self.opts.reorder_stages {
                // A cheaper stage already matched nothing: every later
                // merge is empty, so the remaining searches are pure
                // cost. Part of the optimizer (a skipped stage can no
                // longer raise its resource-limit error), so the
                // declaration-order baseline keeps executing every stage.
                break;
            }
            let stage = &self.plan.stages[i];
            let keys = self.plan.join_keys(i, &placed);
            // Sideways information passing: the distinct nodes the
            // accumulated rows hold for each shared join key become
            // start/endpoint filters inside the next stage's search, so
            // bindings that cannot join are never generated.
            let filters = self.semi_join_filters(&join, stats, &est, i, &placed, &keys);
            let counters = profile.and_then(|p| p.stage(i));
            let started = counters.map(|_| std::time::Instant::now());
            let bindings = stage.execute(graph, &self.opts, params, filters.as_ref(), counters)?;
            if let (Some(c), Some(t)) = (counters, started) {
                c.add_micros(t.elapsed().as_micros() as u64);
            }
            join.merge_stage(&stage.expr, &bindings, &keys, self.opts.hash_join);
            placed.push(i);
        }
        Ok(join.finish(
            graph,
            &self.plan.normalized,
            &self.opts,
            &self.plan.exists,
            params,
        ))
    }

    /// Builds the semi-join filter map for `stage` from the accumulated
    /// join rows: the exact distinct node sets of every key whose
    /// [`cost::semi_join_decisions`] verdict is *apply* and whose rows
    /// all bind the key to a node. Returns `None` when no filter is
    /// worth (or safe to) push.
    fn semi_join_filters(
        &self,
        join: &JoinState,
        stats: &GraphStats,
        est: &[f64],
        stage: usize,
        placed: &[usize],
        keys: &[String],
    ) -> Option<SemiJoinFilters> {
        let decisions =
            cost::semi_join_decisions(&self.plan, stats, est, stage, placed, keys, &self.opts);
        let mut filters = SemiJoinFilters::new();
        for d in decisions.iter().filter(|d| d.apply) {
            if let Some(set) = join.distinct_key_nodes(&d.var) {
                filters.insert(d.var.clone(), set);
            }
        }
        (!filters.is_empty()).then_some(filters)
    }

    /// The start-node partition for the worker pool, refined by degree
    /// skew: when the statistics catalog's degree histogram shows nodes
    /// far above the average degree, each such *hub* start node becomes
    /// its own work unit (see [`pool::adaptive_chunks`]), so one
    /// expensive start cannot serialize a whole chunk behind it. Uniform
    /// graphs take the plain contiguous partition — the histogram check
    /// costs a few bucket sums, not a per-node scan.
    fn start_chunks(
        &self,
        graph: &PropertyGraph,
        stats: &GraphStats,
        starts: &[property_graph::NodeId],
        threads: usize,
    ) -> Vec<std::ops::Range<usize>> {
        const HUB_FACTOR: usize = 8;
        let avg_steps = (2 * stats.edge_count).div_ceil(stats.node_count.max(1));
        let hub_threshold = avg_steps.max(1) * HUB_FACTOR;
        if stats.degree_histogram.nodes_at_or_above(hub_threshold) == 0 {
            return pool::chunks(starts.len(), threads);
        }
        pool::adaptive_chunks(starts.len(), threads, |i| {
            graph.steps(starts[i]).len() >= hub_threshold
        })
    }

    /// Parallel execution: every stage's search is kicked off eagerly on
    /// a scoped worker pool, split into per-start-node partitions (see
    /// [`crate::eval::pool`]), while the caller's thread merges completed
    /// stages through the [`JoinState`] *in the same cost-chosen order*
    /// as the sequential path. Determinism falls out of three facts:
    ///
    /// * partition results are spliced back in partition order before the
    ///   stage's (sorting) reduce/dedup pass, so each stage's bindings
    ///   are bit-for-bit the sequential stage's;
    /// * stages merge strictly in `order`, however their searches finish,
    ///   so the join accumulates exactly the sequential row order;
    /// * the early exit fires on the same condition (empty accumulation
    ///   under `reorder_stages`) at the same merge position — it cancels
    ///   the not-yet-claimed work units of later stages and ignores
    ///   whatever eager results (or resource-limit errors) those stages
    ///   already produced, which is precisely the set of stages the
    ///   sequential executor never runs.
    ///
    /// Errors surface in merge order: the first failing stage at or
    /// before the merge frontier aborts the run, like the sequential
    /// loop; failures of stages past an early exit are dropped with their
    /// results.
    ///
    /// Semi-join filters reach the pool through per-position slots: after
    /// each merge, the sink publishes the next position's filter map, and
    /// a worker snapshots its position's slot *at claim time*. Units
    /// claimed before publication simply run unfiltered — a filtered and
    /// an unfiltered partition differ only in bindings the join rejects
    /// anyway, and the per-stage reduce/dedup pass is a sorted set, so
    /// the merged output stays bit-for-bit the sequential result.
    fn execute_parallel(
        &self,
        graph: &PropertyGraph,
        order: &[usize],
        threads: usize,
        params: &Params,
        est: &[f64],
        profile: Option<&ExecProfile>,
    ) -> Result<MatchSet> {
        use std::ops::ControlFlow;
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::{Arc, RwLock};

        let stats = graph.stats();
        let starts: Vec<property_graph::NodeId> = graph.nodes().collect();
        let chunks = self.start_chunks(graph, stats, &starts, threads);
        let per_stage = chunks.len();
        let unit_count = order.len() * per_stage;

        // Stage positions >= this are cancelled (early exit): workers
        // return an empty result instead of searching.
        let cancel_from = AtomicUsize::new(usize::MAX);

        // One semi-join filter slot per order position, published by the
        // merging (caller) thread, snapshot by workers at claim time.
        let filter_slots: Vec<RwLock<Option<Arc<SemiJoinFilters>>>> =
            (0..order.len()).map(|_| RwLock::new(None)).collect();

        let mut pending: Vec<Option<Result<Vec<PathBinding>>>> =
            (0..unit_count).map(|_| None).collect();
        let mut received = vec![0usize; order.len()];
        let mut join = JoinState::new(self.opts.isomorphism);
        let mut placed: Vec<usize> = Vec::with_capacity(order.len());
        let mut merge_pos = 0usize;
        let mut failure: Option<crate::error::Error> = None;

        pool::run_units(
            threads,
            unit_count,
            |u| {
                let pos = u / per_stage;
                if pos >= cancel_from.load(Ordering::Relaxed) {
                    return Ok(Vec::new());
                }
                let idx = order[pos];
                let stage = &self.plan.stages[idx];
                let filters = filter_slots[pos].read().expect("filter slot").clone();
                let counters = profile.and_then(|p| p.stage(idx));
                let started = counters.map(|_| std::time::Instant::now());
                let out = stage.matches_from(
                    graph,
                    &self.opts,
                    params,
                    &starts[chunks[u % per_stage].clone()],
                    filters.as_deref(),
                    counters,
                );
                if let (Some(c), Some(t)) = (counters, started) {
                    c.add_micros(t.elapsed().as_micros() as u64);
                }
                out
            },
            |u, out| {
                let pos = u / per_stage;
                pending[u] = Some(out);
                received[pos] += 1;
                while merge_pos < order.len() && received[merge_pos] == per_stage {
                    let idx = order[merge_pos];
                    let stage = &self.plan.stages[idx];
                    let mut raw = Vec::new();
                    for c in 0..per_stage {
                        match pending[merge_pos * per_stage + c].take().expect("received") {
                            Ok(mut part) => raw.append(&mut part),
                            Err(e) => {
                                // Abort: make every still-unclaimed unit
                                // a no-op before winding down.
                                cancel_from.store(0, Ordering::Relaxed);
                                failure = Some(e);
                                return ControlFlow::Break(());
                            }
                        }
                    }
                    match stage.finish_bindings(graph, &self.opts, raw) {
                        Ok(bindings) => {
                            let keys = self.plan.join_keys(idx, &placed);
                            join.merge_stage(&stage.expr, &bindings, &keys, self.opts.hash_join);
                            placed.push(idx);
                        }
                        Err(e) => {
                            cancel_from.store(0, Ordering::Relaxed);
                            failure = Some(e);
                            return ControlFlow::Break(());
                        }
                    }
                    merge_pos += 1;
                    if join.is_empty() && self.opts.reorder_stages {
                        // Same early exit as the sequential loop: nothing
                        // can survive further merges, so later stages are
                        // pure cost — cancel their unclaimed partitions
                        // (immediately, without waiting for their searches
                        // to land) and ignore what already ran.
                        cancel_from.store(merge_pos, Ordering::Relaxed);
                        return ControlFlow::Break(());
                    }
                    if merge_pos < order.len() {
                        // Publish the next position's semi-join filters:
                        // units of that stage claimed from here on prune
                        // against the now-complete accumulated key sets.
                        let next = order[merge_pos];
                        let keys = self.plan.join_keys(next, &placed);
                        if let Some(f) =
                            self.semi_join_filters(&join, stats, est, next, &placed, &keys)
                        {
                            *filter_slots[merge_pos].write().expect("filter slot") =
                                Some(Arc::new(f));
                        }
                    }
                }
                if merge_pos == order.len() {
                    ControlFlow::Break(())
                } else {
                    ControlFlow::Continue(())
                }
            },
        );

        if let Some(e) = failure {
            return Err(e);
        }
        Ok(join.finish(
            graph,
            &self.plan.normalized,
            &self.opts,
            &self.plan.exists,
            params,
        ))
    }

    /// The lowered plan (inspect or `Display` it for an EXPLAIN view).
    pub fn plan(&self) -> &ExecutablePlan {
        &self.plan
    }

    /// Replaces the plan's stage programs with deserialized ones; see
    /// [`ExecutablePlan::adopt_stage_programs`].
    pub fn adopt_stage_programs(&mut self, progs: Vec<FlatProgram>) -> Result<()> {
        self.plan.adopt_stage_programs(progs)
    }

    /// Registers the `$name` parameters of a host-side expression (a
    /// `RETURN` item, `ORDER BY` key, or `COLUMNS` projection) as
    /// additional slots of this plan, so bind-time validation covers the
    /// whole statement — not just the pattern — and a binding consumed
    /// only by a projection is not misreported as unused.
    pub fn declare_params_in(&mut self, expr: &Expr) {
        collect_expr_params(expr, &mut self.plan.params);
    }

    /// The options the query was prepared under.
    pub fn options(&self) -> &EvalOptions {
        &self.opts
    }

    /// The EXPLAIN rendering of the plan (same as `format!("{}", q.plan())`).
    pub fn explain(&self) -> String {
        self.plan.to_string()
    }

    /// The cost-based execution decision for this query over `graph`:
    /// per-stage cardinality estimates, the chosen stage order, and the
    /// join algorithm per step — computed exactly as
    /// [`PreparedQuery::execute`] would.
    pub fn cost_report(&self, graph: &PropertyGraph) -> CostReport {
        self.cost_report_with(graph, &Params::new())
    }

    /// [`Self::cost_report`] with parameter bindings: predicate constants
    /// unknown at prepare time are re-estimated from the bound values, so
    /// the report shows the stage order an `execute_with` call with the
    /// same bindings would use.
    pub fn cost_report_with(&self, graph: &PropertyGraph, params: &Params) -> CostReport {
        CostReport::compute(&self.plan, graph.stats(), &self.opts, params)
    }

    /// The EXPLAIN rendering annotated with the cost model's decisions
    /// for `graph` (the plan itself stays graph-independent; only the
    /// annotation needs statistics).
    pub fn explain_for(&self, graph: &PropertyGraph) -> String {
        format!("{}\n{}", self.plan, self.cost_report(graph))
    }

    /// [`Self::explain_for`] under the given parameter bindings.
    pub fn explain_with(&self, graph: &PropertyGraph, params: &Params) -> String {
        format!("{}\n{}", self.plan, self.cost_report_with(graph, params))
    }
}

/// The flat, inspectable result of lowering a graph pattern: one compiled
/// NFA stage per path pattern, the explicit join graph over shared
/// singleton variables, and the selector/postfilter stages.
#[derive(Clone)]
pub struct ExecutablePlan {
    /// The normalized pattern the stages were compiled from.
    pub(crate) normalized: GraphPattern,
    /// Variable classification (kinds, singleton/conditional/group).
    pub(crate) analysis: Analysis,
    /// One compiled stage per path pattern, in declaration order.
    pub(crate) stages: Vec<PathStage>,
    /// Cross-stage equi-join keys (shared unconditional singletons).
    ///
    /// Consumed three ways: EXPLAIN shows them, the [`cost`] reorderer
    /// keeps its greedy order connected along them, and the executor hash
    /// joins on them (the per-pair merge still re-checks every shared
    /// binding, so the keys are a filter, never a semantic widening).
    pub(crate) joins: Vec<JoinEdge>,
    /// Prepared subplans for the postfilter's `EXISTS` subqueries.
    pub(crate) exists: ExistsPlans,
    /// Parameter slots: every `$name` the statement consumes, with the
    /// type expectations inferred from its usage contexts. Executions
    /// bind values against these; the compiled stages never change.
    pub(crate) params: ParamSlots,
}

impl ExecutablePlan {
    /// Number of compiled path stages.
    pub fn stage_count(&self) -> usize {
        self.stages.len()
    }

    /// Names of the `$name` parameter slots this plan declares, in
    /// sorted order.
    pub fn param_names(&self) -> impl Iterator<Item = &str> {
        self.params.keys().map(String::as_str)
    }

    /// The variable analysis computed at prepare time.
    pub fn analysis(&self) -> &Analysis {
        &self.analysis
    }

    /// Cross-stage join keys as `(left stage, right stage, variables)`.
    pub fn join_edges(&self) -> impl Iterator<Item = (usize, usize, &[String])> {
        self.joins
            .iter()
            .map(|j| (j.left, j.right, j.on.as_slice()))
    }

    /// The flat programs of all stages, in declaration order — the unit
    /// of plan serialization ([`FlatProgram::to_bytes`]).
    pub fn stage_programs(&self) -> Vec<&FlatProgram> {
        self.stages.iter().map(|s| &s.prog).collect()
    }

    /// Replaces the stages' flat programs with `progs` (e.g. programs
    /// decoded from a persisted plan-cache file), after checking they are
    /// shape-compatible with the freshly compiled stages. Used by hosts
    /// that warm-start a plan cache: the adopted, deserialized programs
    /// are what subsequently executes.
    pub fn adopt_stage_programs(&mut self, progs: Vec<FlatProgram>) -> Result<()> {
        if progs.len() != self.stages.len() {
            return Err(Error::Unsupported(format!(
                "adopted plan has {} stage program(s), expected {}",
                progs.len(),
                self.stages.len()
            )));
        }
        for (stage, prog) in self.stages.iter().zip(&progs) {
            if prog.instr_count() != stage.prog.instr_count()
                || prog.table_sizes() != stage.prog.table_sizes()
            {
                return Err(Error::Unsupported(
                    "adopted plan program does not match the compiled stage".to_owned(),
                ));
            }
        }
        for (stage, prog) in self.stages.iter_mut().zip(progs) {
            stage.prog = prog;
        }
        Ok(())
    }

    /// The equi-join variables between `stage` and the already-executed
    /// `placed` stages: the union of the join-graph edges connecting them.
    pub(crate) fn join_keys(&self, stage: usize, placed: &[usize]) -> Vec<String> {
        let mut keys: Vec<String> = self
            .joins
            .iter()
            .filter(|j| {
                (j.left == stage && placed.contains(&j.right))
                    || (j.right == stage && placed.contains(&j.left))
            })
            .flat_map(|j| j.on.iter().cloned())
            .collect();
        keys.sort();
        keys.dedup();
        keys
    }
}

/// One compiled path pattern: its NFA, resolved search mode, and the
/// per-stage reduce/dedup/select pipeline inputs.
#[derive(Clone)]
pub(crate) struct PathStage {
    /// The normalized pattern (kept for the graph-dependent edge bound
    /// and for EXPLAIN rendering).
    pub(crate) expr: PathPatternExpr,
    /// The compiled NFA (the legacy interpreter's form, kept as the
    /// differential oracle behind `EvalOptions::flat = false`).
    pub(crate) nfa: Nfa,
    /// The NFA lowered into the flat transition-array IR — what actually
    /// executes when `EvalOptions::flat` is on (the default).
    pub(crate) prog: FlatProgram,
    /// Search mode, resolved graph-independently at prepare time.
    pub(crate) prune: PruneMode,
    /// Named (non-anonymous) variables this stage binds.
    pub(crate) vars: BTreeSet<String>,
}

impl PathStage {
    /// Compiles one normalized path pattern into a stage.
    fn lower(expr: &PathPatternExpr) -> Result<PathStage> {
        let nfa = matcher::compile(&expr.pattern);
        let prog = FlatProgram::from_nfa(&nfa);
        let selector_groups = expr.selector.as_ref().and_then(selector::length_groups);
        let prune = matcher::resolve_prune(&nfa, expr.restrictor, selector_groups)?;
        let mut var_list = Vec::new();
        matcher::collect_vars(&expr.pattern, &mut var_list);
        let mut vars: BTreeSet<String> = var_list.into_iter().map(|(v, _)| v).collect();
        if let Some(pv) = &expr.path_var {
            vars.insert(pv.clone());
        }
        Ok(PathStage {
            expr: expr.clone(),
            nfa,
            prog,
            prune,
            vars,
        })
    }

    /// Matches this stage against `graph`: raw product-automaton search →
    /// §6.5 reduce → dedup → §5.1 selector. The SPARQL endpoint-only mode
    /// additionally collapses results to distinct endpoint bindings.
    ///
    /// `filters` carries the semi-join node sets pushed down from the
    /// accumulated join (checked at every `NodeTest` the search takes);
    /// `counters` receives the search's execution tallies when profiling.
    pub(crate) fn execute(
        &self,
        graph: &PropertyGraph,
        opts: &EvalOptions,
        params: &Params,
        filters: Option<&SemiJoinFilters>,
        counters: Option<&StageCounters>,
    ) -> Result<Vec<PathBinding>> {
        let starts: Vec<property_graph::NodeId> = graph.nodes().collect();
        let raw = self.matches_from(graph, opts, params, &starts, filters, counters)?;
        self.finish_bindings(graph, opts, raw)
    }

    /// The raw product-automaton search seeded from `starts` only — the
    /// per-partition half of stage execution. Partitions are independent
    /// (see [`Matcher::run_from`]); splicing their results in partition
    /// order and handing the whole to [`PathStage::finish_bindings`]
    /// reproduces [`PathStage::execute`] exactly.
    pub(crate) fn matches_from(
        &self,
        graph: &PropertyGraph,
        opts: &EvalOptions,
        params: &Params,
        starts: &[property_graph::NodeId],
        filters: Option<&SemiJoinFilters>,
        counters: Option<&StageCounters>,
    ) -> Result<Vec<PathBinding>> {
        if opts.flat {
            let m = FlatMatcher::over(
                graph,
                &self.prog,
                &self.expr.pattern,
                self.expr.restrictor,
                self.prune,
                opts,
                params,
            );
            let m = match filters {
                Some(f) => m.with_filters(f),
                None => m,
            };
            let out = m.run_from(starts);
            if let Some(c) = counters {
                m.flush_counters(c);
            }
            return out;
        }
        let m = Matcher::over(
            graph,
            &self.nfa,
            &self.expr.pattern,
            self.expr.restrictor,
            self.prune,
            opts,
            params,
        );
        let m = match filters {
            Some(f) => m.with_filters(f),
            None => m,
        };
        let out = m.run_from(starts);
        if let Some(c) = counters {
            m.flush_counters(c);
        }
        out
    }

    /// The order-insensitive second half of stage execution: §6.5
    /// reduction/deduplication (a sorted set, which is what makes the
    /// partition splice order irrelevant), §5.1 selector application, and
    /// the endpoint-only collapse. Re-checks the stage-wide
    /// [`EvalOptions::max_matches`] limit so partitioned runs enforce the
    /// same total budget as a sequential search.
    pub(crate) fn finish_bindings(
        &self,
        graph: &PropertyGraph,
        opts: &EvalOptions,
        raw: Vec<PathBinding>,
    ) -> Result<Vec<PathBinding>> {
        if raw.len() > opts.max_matches {
            return Err(crate::error::Error::LimitExceeded {
                what: "matches",
                limit: opts.max_matches,
            });
        }

        // Reduction and deduplication (§6.5).
        let deduped: BTreeSet<PathBinding> = raw.into_iter().map(PathBinding::reduce).collect();
        let mut bindings: Vec<PathBinding> = deduped.into_iter().collect();

        if let Some(sel) = &self.expr.selector {
            bindings = selector::apply(graph, sel, bindings);
        }

        if opts.mode == MatchMode::EndpointOnly {
            // SPARQL property paths: only check path existence between
            // endpoints; group bindings and path identity are unobservable.
            let mut seen = BTreeSet::new();
            bindings.retain(|b| {
                let key = (b.path.start(), b.path.end(), b.alt_marks.clone());
                seen.insert(key)
            });
            // A canonical representative walk is kept so hosts can still
            // expose endpoints.
            for b in &mut bindings {
                b.bindings.retain(|_, v| v.is_singleton());
            }
        }
        Ok(bindings)
    }
}

/// One edge of the explicit join graph: stages `left` and `right` must
/// agree on the variables in `on`.
#[derive(Clone, Debug)]
pub(crate) struct JoinEdge {
    pub(crate) left: usize,
    pub(crate) right: usize,
    pub(crate) on: Vec<String>,
}

/// Prepared subplans for `EXISTS` subqueries, keyed by their subpattern.
#[derive(Clone, Default)]
pub(crate) struct ExistsPlans {
    plans: HashMap<GraphPattern, PreparedQuery>,
}

impl ExistsPlans {
    /// The prepared subplan for `pattern`, if one was prepared.
    pub(crate) fn get(&self, pattern: &GraphPattern) -> Option<&PreparedQuery> {
        self.plans.get(pattern)
    }

    pub(crate) fn len(&self) -> usize {
        self.plans.len()
    }
}

// ---------------------------------------------------------------------------
// GSQL mode rewrite (hoisted from the evaluator)
// ---------------------------------------------------------------------------

/// GSQL default semantics: an unbounded quantifier that has neither a
/// selector nor a restrictor implicitly becomes `ALL SHORTEST` (§3).
fn apply_gsql_default(pattern: &mut GraphPattern) {
    for p in &mut pattern.paths {
        if p.selector.is_none() && p.restrictor.is_none() && has_unbounded(&p.pattern) {
            p.selector = Some(Selector::AllShortest);
        }
    }
}

fn has_unbounded(p: &PathPattern) -> bool {
    match p {
        PathPattern::Node(_) | PathPattern::Edge(_) => false,
        PathPattern::Concat(parts) => parts.iter().any(has_unbounded),
        PathPattern::Paren {
            restrictor, inner, ..
        } => {
            // A restrictor inside the paren already bounds its subtree.
            restrictor.is_none() && has_unbounded(inner)
        }
        PathPattern::Quantified { inner, quantifier } => {
            quantifier.is_unbounded() || has_unbounded(inner)
        }
        PathPattern::Questioned(inner) => has_unbounded(inner),
        PathPattern::Union(bs) | PathPattern::Alternation(bs) => bs.iter().any(has_unbounded),
    }
}

// ---------------------------------------------------------------------------
// EXPLAIN rendering
// ---------------------------------------------------------------------------

impl fmt::Display for ExecutablePlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "ExecutablePlan ({} stages)", self.stages.len())?;
        for (i, stage) in self.stages.iter().enumerate() {
            writeln!(f, "  stage {i}: MATCH {}", stage.expr)?;
            // Instruction count and program bytes are the user-facing
            // plan-size metrics (identical for the flat and legacy
            // engines, which execute the same lowered program); NFA
            // state counts were compiler internals.
            let (nodes, edges, quants) = stage.prog.table_sizes();
            writeln!(
                f,
                "    program: {} instr{}, {} bytes, {nodes} node test{}, {edges} edge test{}, {quants} quantifier{}",
                stage.prog.instr_count(),
                plural(stage.prog.instr_count()),
                stage.prog.encoded_len(),
                plural(nodes),
                plural(edges),
                plural(quants),
            )?;
            let search = match stage.prune {
                PruneMode::Exhaustive => "exhaustive (statically bounded)".to_owned(),
                PruneMode::ShortestGroups(k) => {
                    format!("dominance-pruned BFS ({k} length group{})", plural(k))
                }
            };
            writeln!(f, "    search: {search}")?;
            if !stage.vars.is_empty() {
                let vars: Vec<&str> = stage.vars.iter().map(String::as_str).collect();
                writeln!(f, "    binds: {}", vars.join(", "))?;
            }
            for line in stage.prog.to_string().lines() {
                writeln!(f, "      {line}")?;
            }
        }
        if self.joins.is_empty() {
            if self.stages.len() > 1 {
                writeln!(f, "  join: cartesian (no shared singleton variables)")?;
            }
        } else {
            for j in &self.joins {
                writeln!(
                    f,
                    "  join: stage {} \u{2A1D} stage {} on {{{}}}",
                    j.left,
                    j.right,
                    j.on.join(", ")
                )?;
            }
        }
        if !self.params.is_empty() {
            let names: Vec<String> = self.params.keys().map(|n| format!("${n}")).collect();
            writeln!(f, "  params: {}", names.join(", "))?;
        }
        if let Some(post) = &self.normalized.where_clause {
            write!(f, "  postfilter: WHERE {post}")?;
            if self.exists.len() > 0 {
                write!(
                    f,
                    " [{} prepared EXISTS subplan{}]",
                    self.exists.len(),
                    plural(self.exists.len())
                )?;
            }
            writeln!(f)?;
        }
        write!(f, "  pipeline: match \u{2192} reduce \u{2192} dedup \u{2192} select \u{2192} join \u{2192} filter")
    }
}

fn plural(n: usize) -> &'static str {
    if n == 1 {
        ""
    } else {
        "s"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::*;
    use property_graph::{Endpoints, NodeId, Value};

    fn node(v: &str) -> PathPattern {
        PathPattern::Node(NodePattern::var(v))
    }

    fn edge_r(v: &str) -> PathPattern {
        PathPattern::Edge(EdgePattern::any(Direction::Right).with_var(v))
    }

    fn chain(n: usize) -> PropertyGraph {
        let mut g = PropertyGraph::new();
        let ids: Vec<NodeId> = (0..n)
            .map(|i| g.add_node(&format!("n{i}"), ["N"], [("x", Value::Int(i as i64))]))
            .collect();
        for i in 0..n - 1 {
            g.add_edge(
                &format!("e{i}"),
                Endpoints::directed(ids[i], ids[i + 1]),
                ["T"],
                [],
            );
        }
        g
    }

    fn two_stage_pattern() -> GraphPattern {
        GraphPattern {
            paths: vec![
                PathPatternExpr::plain(PathPattern::concat(vec![
                    node("s"),
                    edge_r("e1"),
                    node("m"),
                ])),
                PathPatternExpr::plain(PathPattern::concat(vec![
                    node("m"),
                    edge_r("e2"),
                    node("t"),
                ])),
            ],
            where_clause: None,
        }
    }

    #[test]
    fn prepare_records_stages_and_join_graph() {
        let q = prepare(&two_stage_pattern(), &EvalOptions::default()).unwrap();
        let plan = q.plan();
        assert_eq!(plan.stage_count(), 2);
        let joins: Vec<_> = plan.join_edges().collect();
        assert_eq!(joins.len(), 1);
        assert_eq!(joins[0].0, 0);
        assert_eq!(joins[0].1, 1);
        assert_eq!(joins[0].2, ["m".to_owned()]);
    }

    #[test]
    fn execute_many_times_is_stable() {
        let q = prepare(&two_stage_pattern(), &EvalOptions::default()).unwrap();
        let g = chain(5);
        let first = q.execute(&g).unwrap();
        for _ in 0..3 {
            assert_eq!(q.execute(&g).unwrap(), first);
        }
        // 3 two-hop chains in a 5-chain.
        assert_eq!(first.len(), 3);
    }

    #[test]
    fn one_plan_two_graphs_independent_results() {
        let q = prepare(&two_stage_pattern(), &EvalOptions::default()).unwrap();
        let small = chain(3);
        let big = chain(8);
        let a = q.execute(&small).unwrap();
        let b = q.execute(&big).unwrap();
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 6);
        // Re-executing against the first graph is unaffected by the second.
        assert_eq!(q.execute(&small).unwrap(), a);
    }

    #[test]
    fn prepare_rejects_uncovered_unbounded_quantifier() {
        let body = PathPattern::concat(vec![
            PathPattern::Node(NodePattern::any()),
            edge_r("t"),
            PathPattern::Node(NodePattern::any()),
        ])
        .paren();
        let gp = GraphPattern::single(PathPattern::concat(vec![
            node("a"),
            body.quantified(Quantifier::star()),
            node("b"),
        ]));
        assert!(prepare(&gp, &EvalOptions::default()).is_err());
    }

    #[test]
    fn gsql_mode_rewrite_happens_at_prepare() {
        let body = PathPattern::concat(vec![
            PathPattern::Node(NodePattern::any()),
            edge_r("t"),
            PathPattern::Node(NodePattern::any()),
        ])
        .paren();
        let gp = GraphPattern::single(PathPattern::concat(vec![
            node("a"),
            body.quantified(Quantifier::plus()),
            node("b"),
        ]));
        let opts = EvalOptions {
            mode: MatchMode::GsqlDefault,
            ..EvalOptions::default()
        };
        let q = prepare(&gp, &opts).unwrap();
        // The implicit ALL SHORTEST is visible in the lowered plan.
        assert!(q.plan().stages[0].expr.selector.is_some());
        let g = chain(4);
        assert!(!q.execute(&g).unwrap().is_empty());
    }

    #[test]
    fn exists_subqueries_are_preplanned() {
        // MATCH (x) WHERE EXISTS { (x)-[e]->(y) }
        let sub =
            GraphPattern::single(PathPattern::concat(vec![node("x"), edge_r("e"), node("y")]));
        let gp = GraphPattern {
            paths: vec![PathPatternExpr::plain(node("x"))],
            where_clause: Some(Expr::Exists(Box::new(sub))),
        };
        let q = prepare(&gp, &EvalOptions::default()).unwrap();
        assert_eq!(q.plan().exists.len(), 1);
        let g = chain(3);
        // n0 and n1 have outgoing edges; n2 does not.
        assert_eq!(q.execute(&g).unwrap().len(), 2);
    }

    #[test]
    fn plan_types_are_send_sync() {
        // The parallel executor shares these across scoped worker
        // threads; this affirmation is the compile-time audit.
        fn check<T: Send + Sync>() {}
        check::<PropertyGraph>();
        check::<property_graph::GraphStats>();
        check::<PreparedQuery>();
        check::<ExecutablePlan>();
        check::<PathStage>();
        check::<Nfa>();
        check::<FlatProgram>();
        check::<EvalOptions>();
    }

    #[test]
    fn parallel_execution_matches_sequential_bit_for_bit() {
        let gp = two_stage_pattern();
        let g = chain(300); // above the auto-parallel threshold
        let sequential = prepare(
            &gp,
            &EvalOptions {
                threads: 1,
                ..EvalOptions::default()
            },
        )
        .unwrap()
        .execute(&g)
        .unwrap();
        for threads in [0, 2, 3, 4, 8] {
            let q = prepare(
                &gp,
                &EvalOptions {
                    threads,
                    ..EvalOptions::default()
                },
            )
            .unwrap();
            // Not just the same set: the same rows in the same order.
            assert_eq!(q.execute(&g).unwrap(), sequential, "threads={threads}");
        }
        assert_eq!(sequential.len(), 298);
    }

    #[test]
    fn parallel_early_exit_on_empty_stage() {
        // Stage `(x:Nope)` matches nothing; the other stages' eager
        // results must be discarded without affecting the (empty) result.
        let gp = GraphPattern {
            paths: vec![
                PathPatternExpr::plain(PathPattern::Node(
                    NodePattern::var("x").with_label(LabelExpr::label("Nope")),
                )),
                PathPatternExpr::plain(PathPattern::concat(vec![
                    node("s"),
                    edge_r("e"),
                    node("t"),
                ])),
            ],
            where_clause: None,
        };
        let g = chain(300);
        for threads in [1, 4] {
            let q = prepare(
                &gp,
                &EvalOptions {
                    threads,
                    ..EvalOptions::default()
                },
            )
            .unwrap();
            assert!(q.execute(&g).unwrap().is_empty(), "threads={threads}");
        }
    }

    #[test]
    fn parallel_execution_propagates_stage_errors() {
        let body = PathPattern::concat(vec![
            PathPattern::Node(NodePattern::any()),
            edge_r("t"),
            PathPattern::Node(NodePattern::any()),
        ])
        .paren();
        let gp = GraphPattern::single(PathPattern::concat(vec![
            node("a"),
            body.quantified(Quantifier::range(1, Some(6))),
            node("b"),
        ]));
        let opts = EvalOptions {
            threads: 4,
            max_matches: 10, // far fewer than the chain's walks
            ..EvalOptions::default()
        };
        let q = prepare(&gp, &opts).unwrap();
        let g = chain(300);
        assert!(matches!(
            q.execute(&g),
            Err(crate::error::Error::LimitExceeded { .. })
        ));
    }

    /// `MATCH (x WHERE x.x >= $min)` as an AST.
    fn param_pattern() -> GraphPattern {
        GraphPattern::single(PathPattern::Node(NodePattern::var("x").with_predicate(
            Expr::cmp(
                CmpOp::Ge,
                Expr::prop("x", "x"),
                Expr::Parameter("min".into()),
            ),
        )))
    }

    #[test]
    fn prepare_collects_parameter_slots() {
        let q = prepare(&param_pattern(), &EvalOptions::default()).unwrap();
        assert_eq!(q.plan().param_names().collect::<Vec<_>>(), vec!["min"]);
        // Slots show up in EXPLAIN.
        assert!(q.explain().contains("params: $min"), "{}", q.explain());
    }

    #[test]
    fn execute_with_binds_and_rebinding_reuses_the_plan() {
        let q = prepare(&param_pattern(), &EvalOptions::default()).unwrap();
        let g = chain(5); // x property = 0..4
        for min in 0..5 {
            let params = crate::Params::new().with("min", min);
            let got = q.execute_with(&g, &params).unwrap();
            assert_eq!(got.len(), 5 - min as usize, "min={min}");
        }
    }

    #[test]
    fn parameterized_execution_matches_inlined_literal() {
        let literal = GraphPattern::single(PathPattern::Node(
            NodePattern::var("x").with_predicate(Expr::cmp(
                CmpOp::Ge,
                Expr::prop("x", "x"),
                Expr::lit(2),
            )),
        ));
        let g = chain(6);
        let inlined = prepare(&literal, &EvalOptions::default())
            .unwrap()
            .execute(&g)
            .unwrap();
        let q = prepare(&param_pattern(), &EvalOptions::default()).unwrap();
        let bound = q
            .execute_with(&g, &crate::Params::new().with("min", 2))
            .unwrap();
        assert_eq!(bound, inlined);
    }

    #[test]
    fn parameter_binding_errors_are_typed() {
        let q = prepare(&param_pattern(), &EvalOptions::default()).unwrap();
        let g = chain(3);
        // Unbound: plain execute() and an empty map both fail.
        assert_eq!(
            q.execute(&g),
            Err(crate::Error::UnboundParameter { name: "min".into() })
        );
        // Extra binding.
        let extra = crate::Params::new().with("min", 1).with("ghost", 2);
        assert_eq!(
            q.execute_with(&g, &extra),
            Err(crate::Error::UnusedParameter {
                name: "ghost".into()
            })
        );
        // Type mismatch: $min is compared against a numeric literal below.
        let typed = GraphPattern {
            paths: param_pattern().paths,
            where_clause: Some(Expr::cmp(
                CmpOp::Gt,
                Expr::Parameter("min".into()),
                Expr::lit(0),
            )),
        };
        let q = prepare(&typed, &EvalOptions::default()).unwrap();
        let err = q
            .execute_with(&g, &crate::Params::new().with("min", "nope"))
            .unwrap_err();
        assert!(
            matches!(err, crate::Error::ParameterTypeMismatch { ref name, .. } if name == "min"),
            "{err}"
        );
        // NULL is always admissible (three-valued logic handles it).
        let ok = q.execute_with(
            &g,
            &crate::Params::new().with("min", property_graph::Value::Null),
        );
        assert!(ok.unwrap().is_empty());
    }

    #[test]
    fn parameters_reach_exists_subplans() {
        // MATCH (x) WHERE EXISTS { (x)-[e]->(y WHERE y.x >= $min) }
        let sub = GraphPattern::single(PathPattern::concat(vec![
            node("x"),
            edge_r("e"),
            PathPattern::Node(NodePattern::var("y").with_predicate(Expr::cmp(
                CmpOp::Ge,
                Expr::prop("y", "x"),
                Expr::Parameter("min".into()),
            ))),
        ]));
        let gp = GraphPattern {
            paths: vec![PathPatternExpr::plain(node("x"))],
            where_clause: Some(Expr::Exists(Box::new(sub))),
        };
        let q = prepare(&gp, &EvalOptions::default()).unwrap();
        assert_eq!(q.plan().param_names().collect::<Vec<_>>(), vec!["min"]);
        let g = chain(4); // x: 0,1,2,3; edges i -> i+1
        let all = q
            .execute_with(&g, &crate::Params::new().with("min", 0))
            .unwrap();
        assert_eq!(all.len(), 3); // n0..n2 have successors
        let some = q
            .execute_with(&g, &crate::Params::new().with("min", 3))
            .unwrap();
        assert_eq!(some.len(), 1); // only n2 -> n3 satisfies y.x >= 3
    }

    #[test]
    fn parallel_parameterized_execution_matches_sequential() {
        let gp = GraphPattern::single(PathPattern::concat(vec![
            PathPattern::Node(NodePattern::var("s").with_predicate(Expr::cmp(
                CmpOp::Ge,
                Expr::prop("s", "x"),
                Expr::Parameter("min".into()),
            ))),
            edge_r("e"),
            node("t"),
        ]));
        let g = chain(300);
        let params = crate::Params::new().with("min", 7);
        let sequential = prepare(
            &gp,
            &EvalOptions {
                threads: 1,
                ..EvalOptions::default()
            },
        )
        .unwrap()
        .execute_with(&g, &params)
        .unwrap();
        for threads in [2, 4] {
            let q = prepare(
                &gp,
                &EvalOptions {
                    threads,
                    ..EvalOptions::default()
                },
            )
            .unwrap();
            assert_eq!(
                q.execute_with(&g, &params).unwrap(),
                sequential,
                "threads={threads}"
            );
        }
        assert_eq!(sequential.len(), 292);
    }

    #[test]
    fn bound_params_sharpen_the_cost_estimate() {
        // Equality against a parameter: unbound → default selectivity,
        // bound → the distinct-value hint, exactly like a literal.
        let eq_param =
            GraphPattern::single(PathPattern::Node(NodePattern::var("x").with_predicate(
                Expr::cmp(CmpOp::Eq, Expr::prop("x", "x"), Expr::Parameter("v".into())),
            )));
        let q = prepare(&eq_param, &EvalOptions::default()).unwrap();
        let g = chain(10); // 10 distinct x values
        let unbound = cost::estimates(q.plan(), g.stats(), true, &crate::Params::new());
        let bound = cost::estimates(
            q.plan(),
            g.stats(),
            true,
            &crate::Params::new().with("v", 3),
        );
        assert!(
            bound[0] < unbound[0],
            "bound {bound:?} must beat unbound {unbound:?}"
        );
        assert!((bound[0] - 1.0).abs() < 1e-9, "{bound:?}");
    }

    /// Two hubs with identical fan-in, but only `h1` reaches the rare
    /// node: the accumulated key set `{h1}` prunes every binding into
    /// `h2` when pushed into the big stage's search.
    fn double_hub() -> PropertyGraph {
        let mut g = PropertyGraph::new();
        let h1 = g.add_node("h1", ["Hub"], []);
        let h2 = g.add_node("h2", ["Hub"], []);
        for i in 0..20 {
            let s = g.add_node(&format!("s{i}"), ["Big"], []);
            g.add_edge(&format!("a{i}"), Endpoints::directed(s, h1), ["In"], []);
            g.add_edge(&format!("b{i}"), Endpoints::directed(s, h2), ["In"], []);
        }
        let r = g.add_node("r", ["Rare"], []);
        g.add_edge("out", Endpoints::directed(h1, r), ["Out"], []);
        g
    }

    fn labeled(v: &str, l: &str) -> PathPattern {
        PathPattern::Node(NodePattern::var(v).with_label(LabelExpr::label(l)))
    }

    fn semi_join_pattern() -> GraphPattern {
        GraphPattern {
            paths: vec![
                PathPatternExpr::plain(PathPattern::concat(vec![
                    labeled("x", "Big"),
                    edge_r("e"),
                    node("h"),
                ])),
                PathPatternExpr::plain(PathPattern::concat(vec![
                    node("h"),
                    edge_r("f"),
                    labeled("y", "Rare"),
                ])),
            ],
            where_clause: None,
        }
    }

    #[test]
    fn semi_join_filtered_execution_matches_unfiltered_bit_for_bit() {
        let gp = semi_join_pattern();
        let g = double_hub();
        let baseline = prepare(
            &gp,
            &EvalOptions {
                semi_join: false,
                threads: 1,
                ..EvalOptions::default()
            },
        )
        .unwrap()
        .execute(&g)
        .unwrap();
        assert_eq!(baseline.len(), 20);
        for threads in [1, 2, 4] {
            let q = prepare(
                &gp,
                &EvalOptions {
                    threads,
                    ..EvalOptions::default()
                },
            )
            .unwrap();
            // Same rows in the same order, filters on.
            assert_eq!(q.execute(&g).unwrap(), baseline, "threads={threads}");
        }
    }

    #[test]
    fn profile_counts_semi_join_pruning() {
        let q = prepare(
            &semi_join_pattern(),
            &EvalOptions {
                threads: 1,
                ..EvalOptions::default()
            },
        )
        .unwrap();
        let g = double_hub();
        let profile = ExecProfile::new(q.plan().stage_count());
        let got = q
            .execute_with_profile(&g, &Params::new(), &profile)
            .unwrap();
        assert_eq!(got.len(), 20);
        let (nodes, edges, pruned, instrs, _truncations) = profile.totals();
        assert!(nodes > 0, "start nodes are expanded");
        assert!(edges > 0, "edges are traversed");
        assert!(instrs > 0, "the flat interpreter dispatched instructions");
        // The 20 spoke->h2 bindings die at the h NodeTest instead of
        // surviving to the join.
        assert_eq!(pruned, 20, "totals: {:?}", profile.totals());
        // Counters are addressed by declaration stage index: the filtered
        // big stage is stage 0 regardless of execution order.
        assert_eq!(profile.stages()[0].rows_pruned(), 20);
        assert_eq!(profile.stages()[1].rows_pruned(), 0);
    }

    #[test]
    fn semi_join_off_produces_no_pruning() {
        let q = prepare(
            &semi_join_pattern(),
            &EvalOptions {
                semi_join: false,
                threads: 1,
                ..EvalOptions::default()
            },
        )
        .unwrap();
        let g = double_hub();
        let profile = ExecProfile::new(q.plan().stage_count());
        q.execute_with_profile(&g, &Params::new(), &profile)
            .unwrap();
        assert_eq!(profile.totals().2, 0);
    }

    #[test]
    fn flat_and_legacy_engines_agree_bit_for_bit() {
        let gp = two_stage_pattern();
        let g = chain(40);
        let flat_on = prepare(&gp, &EvalOptions::default())
            .unwrap()
            .execute(&g)
            .unwrap();
        let flat_off = prepare(
            &gp,
            &EvalOptions {
                flat: false,
                ..EvalOptions::default()
            },
        )
        .unwrap()
        .execute(&g)
        .unwrap();
        assert_eq!(flat_on, flat_off);
    }

    #[test]
    fn explain_rendering_mentions_stages_and_joins() {
        let q = prepare(&two_stage_pattern(), &EvalOptions::default()).unwrap();
        let text = q.explain();
        assert!(text.contains("ExecutablePlan (2 stages)"), "{text}");
        assert!(text.contains("stage 0"), "{text}");
        assert!(text.contains("on {m}"), "{text}");
        assert!(text.contains("pipeline"), "{text}");
    }
}
