//! A small LRU cache for prepared plans, keyed by `(query text,
//! EvalOptions, graph epoch)`.
//!
//! Hosts that see the same query text repeatedly (the GQL session, the
//! SQL/PGQ `GRAPH_TABLE` front-end, the CLI REPL) use one of these to skip
//! parse, analysis, and compilation on replays without holding prepared
//! handles themselves. The cache is generic over the host's prepared type
//! (the front-ends wrap [`super::PreparedQuery`] in their own structs) and
//! deliberately tiny: a `HashMap` with a logical clock, evicting the
//! least-recently-used entry on overflow — exact LRU without the
//! linked-list bookkeeping, fine at the capacities sessions use.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, MutexGuard};

use crate::eval::EvalOptions;

/// Default number of distinct (query, options) plans a session retains.
pub const DEFAULT_PLAN_CACHE_CAPACITY: usize = 128;

/// Hit/miss counters and occupancy of a [`PlanLru`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that missed (including lookups of never-inserted keys).
    pub misses: u64,
    /// Entries currently cached.
    pub len: usize,
    /// Maximum entries retained.
    pub capacity: usize,
}

/// An LRU cache from `(query text, EvalOptions, graph epoch)` to a
/// prepared plan.
///
/// The epoch dimension exists for hosts whose graph mutates underneath
/// them (the server's `GraphJournal`): a plan whose cost decisions were
/// taken against epoch *N*'s statistics must not answer a lookup at
/// epoch *N+1*. Hosts with an immutable graph use the epoch-0 shorthand
/// [`PlanLru::get`] / [`PlanLru::insert`]; epoch-aware hosts use
/// [`PlanLru::get_at`] / [`PlanLru::insert_at`].
///
/// ```
/// use gpml_core::eval::EvalOptions;
/// use gpml_core::plan::PlanLru;
///
/// let mut cache: PlanLru<String> = PlanLru::new(2);
/// let opts = EvalOptions::default();
/// assert!(cache.get("MATCH (x)", &opts).is_none()); // miss
/// cache.insert("MATCH (x)".into(), opts.clone(), "a plan".into());
/// assert!(cache.get("MATCH (x)", &opts).is_some()); // hit
/// let stats = cache.stats();
/// assert_eq!((stats.hits, stats.misses, stats.len), (1, 1, 1));
/// ```
#[derive(Clone, Debug)]
pub struct PlanLru<V> {
    capacity: usize,
    clock: u64,
    hits: u64,
    misses: u64,
    entries: HashMap<(String, EvalOptions, u64), (V, u64)>,
}

impl<V> Default for PlanLru<V> {
    fn default() -> PlanLru<V> {
        PlanLru::new(DEFAULT_PLAN_CACHE_CAPACITY)
    }
}

impl<V> PlanLru<V> {
    /// An empty cache retaining at most `capacity` plans (minimum 1).
    pub fn new(capacity: usize) -> PlanLru<V> {
        PlanLru {
            capacity: capacity.max(1),
            clock: 0,
            hits: 0,
            misses: 0,
            entries: HashMap::new(),
        }
    }

    /// Looks up a plan at epoch 0 (immutable-graph hosts).
    pub fn get(&mut self, query: &str, opts: &EvalOptions) -> Option<&V> {
        self.get_at(query, opts, 0)
    }

    /// Looks up a plan at a graph epoch, counting a hit or miss and
    /// refreshing recency.
    pub fn get_at(&mut self, query: &str, opts: &EvalOptions, epoch: u64) -> Option<&V> {
        self.clock += 1;
        // Owned key avoidance is not worth a borrowed-key wrapper here:
        // lookups happen once per query execution, not per row.
        match self
            .entries
            .get_mut(&(query.to_owned(), opts.clone(), epoch))
        {
            Some((v, stamp)) => {
                self.hits += 1;
                *stamp = self.clock;
                Some(v)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts (or replaces) a plan at epoch 0 (immutable-graph hosts).
    pub fn insert(&mut self, query: String, opts: EvalOptions, plan: V) {
        self.insert_at(query, opts, 0, plan);
    }

    /// Inserts (or replaces) a plan at a graph epoch, evicting the least
    /// recently used entry when the cache is full. Entries from stale
    /// epochs age out of the LRU naturally — they stop being touched.
    pub fn insert_at(&mut self, query: String, opts: EvalOptions, epoch: u64, plan: V) {
        self.clock += 1;
        let key = (query, opts, epoch);
        if !self.entries.contains_key(&key) && self.entries.len() >= self.capacity {
            if let Some(oldest) = self
                .entries
                .iter()
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(k, _)| k.clone())
            {
                self.entries.remove(&oldest);
            }
        }
        self.entries.insert(key, (plan, self.clock));
    }

    /// Changes the capacity, evicting oldest entries if now over it.
    pub fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity.max(1);
        while self.entries.len() > self.capacity {
            let oldest = self
                .entries
                .iter()
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(k, _)| k.clone())
                .expect("nonempty while over capacity");
            self.entries.remove(&oldest);
        }
    }

    /// Drops every entry (counters are kept).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// A snapshot of every `(query, options, plan)` entry, most recently
    /// used first. Does not count as a lookup: hit/miss counters and
    /// recency stamps are untouched, so persistence sweeps do not skew
    /// the statistics they run alongside.
    pub fn entries(&self) -> Vec<(String, EvalOptions, V)>
    where
        V: Clone,
    {
        self.entries_full()
            .into_iter()
            .map(|(q, o, _, v)| (q, o, v))
            .collect()
    }

    /// Like [`PlanLru::entries`] but with each entry's graph epoch.
    pub fn entries_full(&self) -> Vec<(String, EvalOptions, u64, V)>
    where
        V: Clone,
    {
        let mut snapshot: Vec<_> = self
            .entries
            .iter()
            .map(|((q, o, e), (v, stamp))| (*stamp, q.clone(), o.clone(), *e, v.clone()))
            .collect();
        snapshot.sort_by_key(|entry| std::cmp::Reverse(entry.0));
        snapshot
            .into_iter()
            .map(|(_, q, o, e, v)| (q, o, e, v))
            .collect()
    }

    /// Hit/miss counters and occupancy.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            len: self.entries.len(),
            capacity: self.capacity,
        }
    }
}

/// A thread-safe, clonable sharing layer over a [`PlanLru`].
///
/// Every clone refers to the *same* underlying cache, so any number of
/// sessions (or server connection threads) preparing the same skeleton
/// pay one compile between them: the first preparer misses and inserts,
/// every later one — on any thread — hits. Lock scopes are per-operation
/// and never held across parse or execution, and a poisoned lock is
/// survived (cache operations do not panic, but a panicking sibling
/// thread must not disable caching for everyone else).
///
/// ```
/// use gpml_core::plan::SharedPlanLru;
///
/// let shared: SharedPlanLru<String> = SharedPlanLru::new(8);
/// let opts = gpml_core::eval::EvalOptions::default();
/// let sibling = shared.clone(); // same cache, different handle
/// shared.insert("MATCH (x)".into(), opts.clone(), "a plan".into());
/// assert_eq!(sibling.get_cloned("MATCH (x)", &opts).as_deref(), Some("a plan"));
/// assert_eq!(shared.stats().hits, 1);
/// ```
#[derive(Debug)]
pub struct SharedPlanLru<V> {
    inner: Arc<Mutex<PlanLru<V>>>,
}

impl<V> Clone for SharedPlanLru<V> {
    fn clone(&self) -> SharedPlanLru<V> {
        SharedPlanLru {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<V> Default for SharedPlanLru<V> {
    fn default() -> SharedPlanLru<V> {
        SharedPlanLru::new(DEFAULT_PLAN_CACHE_CAPACITY)
    }
}

impl<V> From<PlanLru<V>> for SharedPlanLru<V> {
    fn from(cache: PlanLru<V>) -> SharedPlanLru<V> {
        SharedPlanLru {
            inner: Arc::new(Mutex::new(cache)),
        }
    }
}

impl<V> SharedPlanLru<V> {
    /// A new shared cache retaining at most `capacity` plans (minimum 1).
    pub fn new(capacity: usize) -> SharedPlanLru<V> {
        PlanLru::new(capacity).into()
    }

    /// The locked underlying cache, surviving poisoning. Hold the guard
    /// only for cache operations, never across compilation or execution.
    pub fn lock(&self) -> MutexGuard<'_, PlanLru<V>> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Looks up a plan by value at epoch 0, counting a hit or miss.
    pub fn get_cloned(&self, query: &str, opts: &EvalOptions) -> Option<V>
    where
        V: Clone,
    {
        self.lock().get(query, opts).cloned()
    }

    /// Looks up a plan by value at a graph epoch, counting a hit or miss.
    pub fn get_cloned_at(&self, query: &str, opts: &EvalOptions, epoch: u64) -> Option<V>
    where
        V: Clone,
    {
        self.lock().get_at(query, opts, epoch).cloned()
    }

    /// Inserts (or replaces) a plan at epoch 0, evicting the LRU entry
    /// when full.
    pub fn insert(&self, query: String, opts: EvalOptions, plan: V) {
        self.lock().insert(query, opts, plan);
    }

    /// Inserts (or replaces) a plan at a graph epoch, evicting the LRU
    /// entry when full.
    pub fn insert_at(&self, query: String, opts: EvalOptions, epoch: u64, plan: V) {
        self.lock().insert_at(query, opts, epoch, plan);
    }

    /// Changes the capacity, evicting oldest entries if now over it.
    pub fn set_capacity(&self, capacity: usize) {
        self.lock().set_capacity(capacity);
    }

    /// Drops every entry (counters are kept).
    pub fn clear(&self) {
        self.lock().clear();
    }

    /// Hit/miss counters and occupancy, aggregated across every holder of
    /// a clone of this cache.
    pub fn stats(&self) -> CacheStats {
        self.lock().stats()
    }

    /// A snapshot of every `(query, options, plan)` entry, most recently
    /// used first, without counting lookups or refreshing recency.
    pub fn entries(&self) -> Vec<(String, EvalOptions, V)>
    where
        V: Clone,
    {
        self.lock().entries()
    }

    /// Like [`SharedPlanLru::entries`] but with each entry's graph epoch.
    pub fn entries_full(&self) -> Vec<(String, EvalOptions, u64, V)>
    where
        V: Clone,
    {
        self.lock().entries_full()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts() -> EvalOptions {
        EvalOptions::default()
    }

    #[test]
    fn hit_and_miss_counting() {
        let mut lru: PlanLru<u32> = PlanLru::new(4);
        assert!(lru.get("q1", &opts()).is_none());
        lru.insert("q1".into(), opts(), 1);
        assert_eq!(lru.get("q1", &opts()), Some(&1));
        let s = lru.stats();
        assert_eq!((s.hits, s.misses, s.len, s.capacity), (1, 1, 1, 4));
    }

    #[test]
    fn options_are_part_of_the_key() {
        let mut lru: PlanLru<u32> = PlanLru::new(4);
        lru.insert("q".into(), opts(), 1);
        let other = EvalOptions {
            hash_join: false,
            ..opts()
        };
        assert!(lru.get("q", &other).is_none());
        lru.insert("q".into(), other.clone(), 2);
        assert_eq!(lru.get("q", &opts()), Some(&1));
        assert_eq!(lru.get("q", &other), Some(&2));
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut lru: PlanLru<u32> = PlanLru::new(2);
        lru.insert("a".into(), opts(), 1);
        lru.insert("b".into(), opts(), 2);
        assert_eq!(lru.get("a", &opts()), Some(&1)); // refresh a
        lru.insert("c".into(), opts(), 3); // evicts b
        assert_eq!(lru.get("a", &opts()), Some(&1));
        assert!(lru.get("b", &opts()).is_none());
        assert_eq!(lru.get("c", &opts()), Some(&3));
        assert_eq!(lru.stats().len, 2);
    }

    #[test]
    fn capacity_knob_shrinks() {
        let mut lru: PlanLru<u32> = PlanLru::new(8);
        for i in 0..6 {
            lru.insert(format!("q{i}"), opts(), i);
        }
        lru.set_capacity(2);
        assert_eq!(lru.stats().len, 2);
        assert_eq!(lru.stats().capacity, 2);
        // Newest entries survive.
        assert_eq!(lru.get("q5", &opts()), Some(&5));
        assert_eq!(lru.get("q4", &opts()), Some(&4));
    }

    #[test]
    fn shared_cache_is_one_cache_across_clones_and_threads() {
        let shared: SharedPlanLru<u32> = SharedPlanLru::new(4);
        let clones: Vec<SharedPlanLru<u32>> = (0..8).map(|_| shared.clone()).collect();
        std::thread::scope(|scope| {
            for (i, c) in clones.iter().enumerate() {
                scope.spawn(move || {
                    // Everyone races to prepare the same "query".
                    if c.get_cloned("q", &opts()).is_none() {
                        c.insert("q".into(), opts(), i as u32);
                    }
                });
            }
        });
        let stats = shared.stats();
        assert_eq!(stats.len, 1, "{stats:?}");
        assert_eq!(stats.hits + stats.misses, 8, "{stats:?}");
        assert!(shared.get_cloned("q", &opts()).is_some());
    }

    #[test]
    fn epochs_are_part_of_the_key() {
        let mut lru: PlanLru<u32> = PlanLru::new(4);
        lru.insert_at("q".into(), opts(), 3, 1);
        // A stale (or future) epoch never answers the lookup.
        assert!(lru.get_at("q", &opts(), 2).is_none());
        assert!(lru.get_at("q", &opts(), 4).is_none());
        assert!(lru.get("q", &opts()).is_none()); // epoch-0 shorthand
        assert_eq!(lru.get_at("q", &opts(), 3), Some(&1));
        let full = lru.entries_full();
        assert_eq!(full.len(), 1);
        assert_eq!(full[0].2, 3);
        // The epochless view drops the epoch but keeps the entry.
        assert_eq!(lru.entries().len(), 1);
    }

    #[test]
    fn replacing_does_not_evict() {
        let mut lru: PlanLru<u32> = PlanLru::new(2);
        lru.insert("a".into(), opts(), 1);
        lru.insert("b".into(), opts(), 2);
        lru.insert("a".into(), opts(), 10);
        assert_eq!(lru.get("a", &opts()), Some(&10));
        assert_eq!(lru.get("b", &opts()), Some(&2));
    }
}
