//! Cardinality estimation and cost-based stage ordering.
//!
//! Given a graph's [`GraphStats`] catalog, [`estimates`] predicts how many
//! bindings each compiled [`PathStage`](super::PathStage) produces by
//! walking its label constraints, degree statistics, and predicate
//! selectivity hints; [`greedy_order`] then picks a cheapest-first stage
//! order that stays connected over the plan's explicit join graph, so the
//! cross-stage join always shrinks the accumulation as early as possible
//! and only falls back to a cartesian step when the pattern itself is
//! disconnected.
//!
//! The model is deliberately classical (textbook System-R-style
//! independence assumptions):
//!
//! * a node pattern keeps a *fraction* of candidates — its label
//!   selectivity over the per-label node counts, times an equality hint
//!   `1/distinct(key)` for `x.key = literal` prefilters;
//! * an edge pattern multiplies by the expected *fan-out* per node — the
//!   average number of adjacency steps admitted by its orientation and
//!   label, from the per-edge-label directed/undirected tallies;
//! * quantifiers sum the per-length products over their (truncated)
//!   iteration range; unions sum branches; `?` adds the skip case.
//!
//! Estimates only need to be *relatively* right for ordering, and the
//! whole walk is linear in pattern size, so it runs on every execution —
//! there is nothing to invalidate when the graph changes.

use std::fmt;

use property_graph::GraphStats;

use crate::ast::{
    CmpOp, Direction, EdgePattern, Expr, LabelExpr, NodePattern, PathPattern, Quantifier,
};

use super::{ExecutablePlan, JoinEdge};

/// How many further iterations beyond the minimum an unbounded quantifier
/// is charged for. Selector/restrictor pruning keeps long walks from
/// dominating real executions, so the estimator charges a short horizon
/// instead of a divergent series.
const UNBOUNDED_HORIZON: u32 = 2;

/// Truncation of very wide bounded quantifier ranges, purely to bound the
/// estimator's own work.
const MAX_RANGE: u32 = 8;

/// Selectivity assumed for predicates the model has no hint for.
const DEFAULT_PREDICATE_SELECTIVITY: f64 = 0.5;

/// Estimated result rows for every stage of `plan`, in declaration order.
pub(crate) fn estimates(plan: &ExecutablePlan, stats: &GraphStats) -> Vec<f64> {
    plan.stages
        .iter()
        .map(|s| stats.node_count as f64 * pattern_factor(&s.expr.pattern, stats))
        .collect()
}

/// Greedy cheapest-connected-first ordering over the join graph: start at
/// the cheapest stage, then repeatedly take the cheapest remaining stage
/// that shares a join edge with the stages already placed (falling back to
/// the cheapest remaining stage when none is connected — a cartesian step
/// the pattern forces anyway). Ties break toward declaration order.
pub(crate) fn greedy_order(est: &[f64], joins: &[JoinEdge]) -> Vec<usize> {
    let n = est.len();
    if n <= 1 {
        return (0..n).collect();
    }
    let connected = |s: usize, placed: &[usize]| {
        joins.iter().any(|j| {
            (j.left == s && placed.contains(&j.right)) || (j.right == s && placed.contains(&j.left))
        })
    };
    let mut remaining: Vec<usize> = (0..n).collect();
    let mut order = Vec::with_capacity(n);
    while !remaining.is_empty() {
        let candidates: Vec<usize> = if order.is_empty() {
            remaining.clone()
        } else {
            let adjacent: Vec<usize> = remaining
                .iter()
                .copied()
                .filter(|s| connected(*s, &order))
                .collect();
            if adjacent.is_empty() {
                remaining.clone()
            } else {
                adjacent
            }
        };
        let pick = candidates
            .into_iter()
            .min_by(|a, b| {
                est[*a]
                    .partial_cmp(&est[*b])
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.cmp(b))
            })
            .expect("candidates nonempty");
        order.push(pick);
        remaining.retain(|s| *s != pick);
    }
    order
}

/// The execution order for `plan` over a graph with `stats`: greedy
/// cost-based when statistics are available, declaration order otherwise
/// (an empty graph gives the estimator nothing to discriminate on).
pub(crate) fn order(plan: &ExecutablePlan, stats: &GraphStats) -> Vec<usize> {
    order_from(&estimates(plan, stats), plan, stats)
}

// ---------------------------------------------------------------------------
// The estimator walk
// ---------------------------------------------------------------------------

/// Expected continuations contributed by `p`, composed multiplicatively
/// along a concatenation: node patterns are fractions in `[0, 1]`, edge
/// patterns are fan-outs in `[0, degree]`.
fn pattern_factor(p: &PathPattern, stats: &GraphStats) -> f64 {
    match p {
        PathPattern::Node(np) => node_selectivity(np, stats),
        PathPattern::Edge(ep) => edge_fanout(ep, stats),
        PathPattern::Concat(parts) => parts.iter().map(|x| pattern_factor(x, stats)).product(),
        PathPattern::Paren {
            inner, predicate, ..
        } => pattern_factor(inner, stats) * opt_predicate_selectivity(predicate, stats),
        PathPattern::Quantified { inner, quantifier } => {
            quantified_factor(pattern_factor(inner, stats), *quantifier)
        }
        PathPattern::Questioned(inner) => 1.0 + pattern_factor(inner, stats),
        PathPattern::Union(bs) | PathPattern::Alternation(bs) => {
            bs.iter().map(|x| pattern_factor(x, stats)).sum()
        }
    }
}

/// `sum_{k=min}^{horizon} body^k` — the expected walks through a
/// quantifier whose one iteration multiplies the count by `body`.
fn quantified_factor(body: f64, q: Quantifier) -> f64 {
    let min = q.min;
    let max = q
        .max
        .unwrap_or(min.saturating_add(UNBOUNDED_HORIZON))
        .min(min.saturating_add(MAX_RANGE));
    let mut total = 0.0;
    let mut pow = body.powi(min as i32);
    for _ in min..=max {
        total += pow;
        pow *= body;
    }
    total
}

/// Fraction of nodes admitted by a node pattern.
fn node_selectivity(np: &NodePattern, stats: &GraphStats) -> f64 {
    let label = match &np.label {
        Some(l) => node_label_fraction(l, stats),
        None => 1.0,
    };
    (label * opt_predicate_selectivity(&np.predicate, stats)).clamp(0.0, 1.0)
}

/// Fraction of nodes whose label set satisfies `l`, under independence
/// (`&` takes the rarer side, `|` adds, `!` complements).
fn node_label_fraction(l: &LabelExpr, stats: &GraphStats) -> f64 {
    if stats.node_count == 0 {
        return 0.0;
    }
    let n = stats.node_count as f64;
    let frac = match l {
        LabelExpr::Wildcard => stats.labeled_node_count as f64 / n,
        LabelExpr::Label(name) => stats.nodes_with_label(name) as f64 / n,
        LabelExpr::Not(e) => 1.0 - node_label_fraction(e, stats),
        LabelExpr::And(a, b) => node_label_fraction(a, stats).min(node_label_fraction(b, stats)),
        LabelExpr::Or(a, b) => node_label_fraction(a, stats) + node_label_fraction(b, stats),
    };
    frac.clamp(0.0, 1.0)
}

/// Expected adjacency steps per node admitted by an edge pattern: the
/// matching directed/undirected edge tallies spread over all nodes, scaled
/// by how many of an edge's incidences the orientation admits.
fn edge_fanout(ep: &EdgePattern, stats: &GraphStats) -> f64 {
    if stats.node_count == 0 {
        return 0.0;
    }
    let n = stats.node_count as f64;
    let (directed, undirected) = matching_edges(&ep.label, stats);
    let per_node = match ep.direction {
        // A directed edge is forward-traversable from exactly one node.
        Direction::Right | Direction::Left => directed / n,
        // An undirected edge is traversable from both ends.
        Direction::Undirected => 2.0 * undirected / n,
        Direction::LeftOrRight => 2.0 * directed / n,
        Direction::LeftOrUndirected | Direction::UndirectedOrRight => {
            directed / n + 2.0 * undirected / n
        }
        Direction::Any => 2.0 * (directed + undirected) / n,
    };
    per_node * opt_predicate_selectivity(&ep.predicate, stats)
}

/// Estimated `(directed, undirected)` edge counts matching a label
/// constraint. Plain labels use the exact per-label tallies; compound
/// expressions fall back to a fraction of the overall split (label
/// distribution assumed independent of orientation).
fn matching_edges(label: &Option<LabelExpr>, stats: &GraphStats) -> (f64, f64) {
    match label {
        None => (
            stats.directed_edge_count as f64,
            stats.undirected_edge_count as f64,
        ),
        Some(LabelExpr::Label(name)) => {
            let tallies = stats.edges_with_label(name);
            (tallies.directed as f64, tallies.undirected as f64)
        }
        Some(expr) => {
            let frac = edge_label_fraction(expr, stats);
            (
                frac * stats.directed_edge_count as f64,
                frac * stats.undirected_edge_count as f64,
            )
        }
    }
}

/// Fraction of edges whose label set satisfies `l`.
fn edge_label_fraction(l: &LabelExpr, stats: &GraphStats) -> f64 {
    if stats.edge_count == 0 {
        return 0.0;
    }
    let e = stats.edge_count as f64;
    let frac = match l {
        LabelExpr::Wildcard => stats.labeled_edge_count as f64 / e,
        LabelExpr::Label(name) => stats.edges_with_label(name).total() as f64 / e,
        LabelExpr::Not(x) => 1.0 - edge_label_fraction(x, stats),
        LabelExpr::And(a, b) => edge_label_fraction(a, stats).min(edge_label_fraction(b, stats)),
        LabelExpr::Or(a, b) => edge_label_fraction(a, stats) + edge_label_fraction(b, stats),
    };
    frac.clamp(0.0, 1.0)
}

fn opt_predicate_selectivity(e: &Option<Expr>, stats: &GraphStats) -> f64 {
    e.as_ref().map_or(1.0, |e| predicate_selectivity(e, stats))
}

/// Selectivity of a prefilter. Equality against a literal uses the
/// distinct-value hint for the property (`1/distinct`); boolean structure
/// composes under independence; everything else gets the default.
fn predicate_selectivity(e: &Expr, stats: &GraphStats) -> f64 {
    let sel = match e {
        Expr::Cmp(CmpOp::Eq, a, b) => match (a.as_ref(), b.as_ref()) {
            (Expr::Property(_, key), Expr::Literal(_))
            | (Expr::Literal(_), Expr::Property(_, key)) => match stats.distinct_values(key) {
                Some(d) => 1.0 / d.max(1) as f64,
                None => DEFAULT_PREDICATE_SELECTIVITY,
            },
            _ => DEFAULT_PREDICATE_SELECTIVITY,
        },
        Expr::And(a, b) => predicate_selectivity(a, stats) * predicate_selectivity(b, stats),
        Expr::Or(a, b) => predicate_selectivity(a, stats) + predicate_selectivity(b, stats),
        Expr::Not(a) => 1.0 - predicate_selectivity(a, stats),
        Expr::Literal(_) => 1.0,
        _ => DEFAULT_PREDICATE_SELECTIVITY,
    };
    sel.clamp(0.0, 1.0)
}

// ---------------------------------------------------------------------------
// The cost report (EXPLAIN with statistics)
// ---------------------------------------------------------------------------

/// Which merge the executor runs for one stage of the chosen order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JoinAlgo {
    /// The first stage: its bindings seed the accumulation.
    Scan,
    /// Equi-keys exist and hash joins are enabled.
    Hash,
    /// Equi-keys exist but hash joins are disabled.
    NestedLoop,
    /// No shared singleton variables with the stages merged so far.
    Cartesian,
}

impl fmt::Display for JoinAlgo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JoinAlgo::Scan => write!(f, "scan"),
            JoinAlgo::Hash => write!(f, "hash join"),
            JoinAlgo::NestedLoop => write!(f, "nested-loop join"),
            JoinAlgo::Cartesian => write!(f, "cartesian nested loop"),
        }
    }
}

/// One step of the chosen execution order.
#[derive(Clone, Debug)]
pub struct CostStep {
    /// Declaration index of the stage executed at this step.
    pub stage: usize,
    /// Estimated bindings the stage produces.
    pub estimate: f64,
    /// Equi-join keys against the stages merged before it.
    pub keys: Vec<String>,
    /// How the merge runs.
    pub algo: JoinAlgo,
}

/// The cost-based execution decision for one (plan, graph) pair: per-stage
/// cardinality estimates, the chosen stage order, and the join algorithm
/// per step. Surfaced by `--explain` in the CLI.
#[derive(Clone, Debug)]
pub struct CostReport {
    /// `|N|` of the graph the report was computed against.
    pub node_count: usize,
    /// `|E|` of the graph the report was computed against.
    pub edge_count: usize,
    /// Whether the order below is cost-chosen or declaration order.
    pub reordered: bool,
    /// The execution steps, in chosen order.
    pub steps: Vec<CostStep>,
}

impl CostReport {
    /// Computes the report exactly the way `PreparedQuery::execute`
    /// decides: same estimates, same greedy order, same join algorithm
    /// selection under `opts`.
    pub(crate) fn compute(
        plan: &ExecutablePlan,
        stats: &GraphStats,
        opts: &crate::eval::EvalOptions,
    ) -> CostReport {
        let est = estimates(plan, stats);
        let order = if opts.reorder_stages {
            order_from(&est, plan, stats)
        } else {
            (0..plan.stages.len()).collect()
        };
        let mut steps = Vec::with_capacity(order.len());
        let mut placed: Vec<usize> = Vec::new();
        for &stage in &order {
            let keys = plan.join_keys(stage, &placed);
            let algo = if placed.is_empty() {
                JoinAlgo::Scan
            } else if keys.is_empty() {
                JoinAlgo::Cartesian
            } else if opts.hash_join {
                JoinAlgo::Hash
            } else {
                JoinAlgo::NestedLoop
            };
            steps.push(CostStep {
                stage,
                estimate: est[stage],
                keys,
                algo,
            });
            placed.push(stage);
        }
        CostReport {
            node_count: stats.node_count,
            edge_count: stats.edge_count,
            reordered: opts.reorder_stages,
            steps,
        }
    }

    /// The chosen stage order (declaration indices).
    pub fn order(&self) -> Vec<usize> {
        self.steps.iter().map(|s| s.stage).collect()
    }
}

fn order_from(est: &[f64], plan: &ExecutablePlan, stats: &GraphStats) -> Vec<usize> {
    if stats.node_count == 0 {
        return (0..plan.stages.len()).collect();
    }
    greedy_order(est, &plan.joins)
}

/// Renders an estimate compactly: two decimals below ten, integral above.
pub(crate) fn fmt_estimate(rows: f64) -> String {
    if rows < 10.0 {
        format!("{rows:.2}")
    } else {
        format!("{rows:.0}")
    }
}

impl fmt::Display for CostReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "  cost model ({} nodes, {} edges, {}):",
            self.node_count,
            self.edge_count,
            if self.reordered {
                "cost-based order"
            } else {
                "declaration order"
            }
        )?;
        for step in &self.steps {
            write!(
                f,
                "    {} stage {} (est ~{} rows",
                step.algo,
                step.stage,
                fmt_estimate(step.estimate)
            )?;
            if step.keys.is_empty() {
                writeln!(f, ")")?;
            } else {
                writeln!(f, ") on {{{}}}", step.keys.join(", "))?;
            }
        }
        let order: Vec<String> = self.order().iter().map(|i| i.to_string()).collect();
        write!(f, "    order: {}", order.join(" \u{2192} "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{GraphPattern, NodePattern, PathPatternExpr};
    use crate::eval::EvalOptions;
    use crate::plan::prepare;
    use property_graph::{Endpoints, PropertyGraph, Value};

    fn node(v: &str) -> PathPattern {
        PathPattern::Node(NodePattern::var(v))
    }

    fn labeled(v: &str, l: &str) -> PathPattern {
        PathPattern::Node(NodePattern::var(v).with_label(LabelExpr::label(l)))
    }

    fn edge_r(v: &str) -> PathPattern {
        PathPattern::Edge(EdgePattern::any(Direction::Right).with_var(v))
    }

    /// A hub graph: many `Big` spokes into the hub, two `Rare` nodes.
    fn hub() -> PropertyGraph {
        let mut g = PropertyGraph::new();
        let h = g.add_node("hub", ["Hub"], []);
        for i in 0..20 {
            let s = g.add_node(&format!("s{i}"), ["Big"], []);
            g.add_edge(&format!("e{i}"), Endpoints::directed(s, h), ["In"], []);
        }
        for i in 0..2 {
            let r = g.add_node(&format!("r{i}"), ["Rare"], []);
            g.add_edge(&format!("re{i}"), Endpoints::directed(h, r), ["Out"], []);
        }
        g
    }

    #[test]
    fn rare_label_estimates_below_common_label() {
        let gp = GraphPattern {
            paths: vec![
                PathPatternExpr::plain(PathPattern::concat(vec![
                    labeled("x", "Big"),
                    edge_r("e"),
                    node("h"),
                ])),
                PathPatternExpr::plain(PathPattern::concat(vec![
                    node("h"),
                    edge_r("f"),
                    labeled("y", "Rare"),
                ])),
            ],
            where_clause: None,
        };
        let q = prepare(&gp, &EvalOptions::default()).unwrap();
        let g = hub();
        let est = estimates(q.plan(), g.stats());
        assert!(
            est[1] < est[0],
            "rare stage must be cheaper: {est:?} (order should start there)"
        );
        let order = order(q.plan(), g.stats());
        assert_eq!(order[0], 1, "cheapest stage first: {order:?}");
    }

    #[test]
    fn greedy_order_prefers_connected_stages() {
        // Estimates: stage 2 cheapest, but stage 1 is the only one joined
        // to it; stage 0 is disconnected and must come last despite being
        // cheaper than stage 1.
        let est = [5.0, 50.0, 1.0];
        let joins = vec![JoinEdge {
            left: 1,
            right: 2,
            on: vec!["m".to_owned()],
        }];
        assert_eq!(greedy_order(&est, &joins), vec![2, 1, 0]);
    }

    #[test]
    fn greedy_order_is_declaration_order_on_ties() {
        let est = [1.0, 1.0, 1.0];
        let joins = vec![
            JoinEdge {
                left: 0,
                right: 1,
                on: vec!["a".to_owned()],
            },
            JoinEdge {
                left: 1,
                right: 2,
                on: vec!["b".to_owned()],
            },
        ];
        assert_eq!(greedy_order(&est, &joins), vec![0, 1, 2]);
    }

    #[test]
    fn empty_graph_falls_back_to_declaration_order() {
        let gp = GraphPattern {
            paths: vec![
                PathPatternExpr::plain(PathPattern::concat(vec![
                    labeled("x", "Big"),
                    edge_r("e"),
                    node("h"),
                ])),
                PathPatternExpr::plain(labeled("y", "Rare")),
            ],
            where_clause: None,
        };
        let q = prepare(&gp, &EvalOptions::default()).unwrap();
        let g = PropertyGraph::new();
        assert_eq!(order(q.plan(), g.stats()), vec![0, 1]);
    }

    #[test]
    fn equality_hint_uses_distinct_values() {
        let mut g = PropertyGraph::new();
        for i in 0..10 {
            g.add_node(
                &format!("n{i}"),
                ["N"],
                [("k", Value::Int(i)), ("c", Value::Int(i % 2))],
            );
        }
        let stats = g.stats();
        let eq = |key: &str| predicate_selectivity(&Expr::prop("x", key).eq(Expr::lit(1)), stats);
        assert!((eq("k") - 0.1).abs() < 1e-9);
        assert!((eq("c") - 0.5).abs() < 1e-9);
        assert!((eq("missing") - DEFAULT_PREDICATE_SELECTIVITY).abs() < 1e-9);
    }

    #[test]
    fn quantifier_factor_sums_lengths() {
        // body fan-out 2, {1,3}: 2 + 4 + 8.
        assert!((quantified_factor(2.0, Quantifier::range(1, Some(3))) - 14.0).abs() < 1e-9);
        // Unbounded: truncated horizon of UNBOUNDED_HORIZON extra lengths.
        let unbounded = quantified_factor(2.0, Quantifier::plus());
        assert!((unbounded - 14.0).abs() < 1e-9);
        // Zero-width bodies do not diverge.
        assert!(quantified_factor(0.0, Quantifier::star()) >= 1.0);
    }

    #[test]
    fn cost_report_mirrors_execution_choices() {
        let gp = GraphPattern {
            paths: vec![
                PathPatternExpr::plain(PathPattern::concat(vec![
                    labeled("x", "Big"),
                    edge_r("e"),
                    node("h"),
                ])),
                PathPatternExpr::plain(PathPattern::concat(vec![
                    node("h"),
                    edge_r("f"),
                    labeled("y", "Rare"),
                ])),
            ],
            where_clause: None,
        };
        let q = prepare(&gp, &EvalOptions::default()).unwrap();
        let g = hub();
        let report = CostReport::compute(q.plan(), g.stats(), &EvalOptions::default());
        assert_eq!(report.order(), vec![1, 0]);
        assert_eq!(report.steps[0].algo, JoinAlgo::Scan);
        assert_eq!(report.steps[1].algo, JoinAlgo::Hash);
        assert_eq!(report.steps[1].keys, vec!["h".to_owned()]);
        let text = report.to_string();
        assert!(text.contains("hash join"), "{text}");
        assert!(text.contains("order: 1 \u{2192} 0"), "{text}");

        let nested = CostReport::compute(
            q.plan(),
            g.stats(),
            &EvalOptions {
                hash_join: false,
                reorder_stages: false,
                ..EvalOptions::default()
            },
        );
        assert_eq!(nested.order(), vec![0, 1]);
        assert_eq!(nested.steps[1].algo, JoinAlgo::NestedLoop);
    }
}
