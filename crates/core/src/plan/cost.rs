//! Cardinality estimation and cost-based stage ordering.
//!
//! Given a graph's [`GraphStats`] catalog, `estimates` predicts how many
//! bindings each compiled `PathStage` produces by
//! walking its label constraints, degree statistics, and predicate
//! selectivity hints; `greedy_order` then picks a cheapest-first stage
//! order that stays connected over the plan's explicit join graph, so the
//! cross-stage join always shrinks the accumulation as early as possible
//! and only falls back to a cartesian step when the pattern itself is
//! disconnected.
//!
//! The model is deliberately classical (textbook System-R-style
//! independence assumptions):
//!
//! * a node pattern keeps a *fraction* of candidates — its label
//!   selectivity over the per-label node counts, times an equality hint
//!   `1/distinct(key)` for `x.key = literal` prefilters;
//! * an edge pattern multiplies by the expected *fan-out* per node — the
//!   average number of adjacency steps admitted by its orientation and
//!   label, from the per-edge-label directed/undirected tallies;
//! * quantifiers sum the per-length products over their (truncated)
//!   iteration range; unions sum branches; `?` adds the skip case.
//!
//! Estimates only need to be *relatively* right for ordering, and the
//! whole walk is linear in pattern size, so it runs on every execution —
//! there is nothing to invalidate when the graph changes.

use std::fmt;

use property_graph::GraphStats;

use crate::analysis::VarKind;
use crate::ast::{
    CmpOp, Direction, EdgePattern, Expr, LabelExpr, NodePattern, PathPattern, Quantifier,
};
use crate::eval::{EvalOptions, MatchMode};
use crate::params::Params;

use super::{ExecutablePlan, JoinEdge};

/// How many further iterations beyond the minimum an unbounded quantifier
/// is charged for. Selector/restrictor pruning keeps long walks from
/// dominating real executions, so the estimator charges a short horizon
/// instead of a divergent series.
const UNBOUNDED_HORIZON: u32 = 2;

/// Truncation of very wide bounded quantifier ranges, purely to bound the
/// estimator's own work.
const MAX_RANGE: u32 = 8;

/// Selectivity assumed for predicates the model has no hint for.
const DEFAULT_PREDICATE_SELECTIVITY: f64 = 0.5;

/// Estimated result rows for every stage of `plan`, in declaration order.
///
/// `skew_aware` selects between the plain average-degree model and the
/// max-degree-capped model (see [`edge_fanout`]); the executor uses the
/// skew-aware numbers, EXPLAIN shows both when they differ. `params`
/// carries the execute-time parameter bindings: an equality prefilter
/// against a *bound* `$name` is priced like a literal (the
/// distinct-value hint), while an unbound one falls back to the default
/// selectivity — which is how parameterized plans keep benefiting from
/// stage reordering even though their constants are unknown at prepare
/// time.
pub(crate) fn estimates(
    plan: &ExecutablePlan,
    stats: &GraphStats,
    skew_aware: bool,
    params: &Params,
) -> Vec<f64> {
    plan.stages
        .iter()
        .map(|s| {
            let mut last_node_frac = 1.0;
            stats.node_count as f64
                * pattern_factor(
                    &s.expr.pattern,
                    stats,
                    skew_aware,
                    params,
                    &mut last_node_frac,
                )
        })
        .collect()
}

/// Greedy cheapest-connected-first ordering over the join graph: start at
/// the cheapest stage, then repeatedly take the cheapest remaining stage
/// that shares a join edge with the stages already placed (falling back to
/// the cheapest remaining stage when none is connected — a cartesian step
/// the pattern forces anyway). Ties break toward declaration order.
pub(crate) fn greedy_order(est: &[f64], joins: &[JoinEdge]) -> Vec<usize> {
    let n = est.len();
    if n <= 1 {
        return (0..n).collect();
    }
    let connected = |s: usize, placed: &[usize]| {
        joins.iter().any(|j| {
            (j.left == s && placed.contains(&j.right)) || (j.right == s && placed.contains(&j.left))
        })
    };
    let mut remaining: Vec<usize> = (0..n).collect();
    let mut order = Vec::with_capacity(n);
    while !remaining.is_empty() {
        let candidates: Vec<usize> = if order.is_empty() {
            remaining.clone()
        } else {
            let adjacent: Vec<usize> = remaining
                .iter()
                .copied()
                .filter(|s| connected(*s, &order))
                .collect();
            if adjacent.is_empty() {
                remaining.clone()
            } else {
                adjacent
            }
        };
        let pick = candidates
            .into_iter()
            .min_by(|a, b| {
                est[*a]
                    .partial_cmp(&est[*b])
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.cmp(b))
            })
            .expect("candidates nonempty");
        order.push(pick);
        remaining.retain(|s| *s != pick);
    }
    order
}

// ---------------------------------------------------------------------------
// The estimator walk
// ---------------------------------------------------------------------------

/// Expected continuations contributed by `p`, composed multiplicatively
/// along a concatenation: node patterns are fractions in `[0, 1]`, edge
/// patterns are fan-outs in `[0, degree]`.
///
/// `last_node_frac` threads the selectivity of the most recent node test
/// through the walk — the skew-aware edge model needs to know how small
/// the candidate source set is (see [`edge_fanout`]). Constructs that
/// lose track of the current node (quantifier bodies, branch merges)
/// reset it to the uninformative `1.0`.
fn pattern_factor(
    p: &PathPattern,
    stats: &GraphStats,
    skew_aware: bool,
    params: &Params,
    last_node_frac: &mut f64,
) -> f64 {
    match p {
        PathPattern::Node(np) => {
            let s = node_selectivity(np, stats, params);
            *last_node_frac = s;
            s
        }
        PathPattern::Edge(ep) => {
            let source_frac = if skew_aware { *last_node_frac } else { 1.0 };
            *last_node_frac = 1.0;
            edge_fanout(ep, stats, source_frac, params)
        }
        PathPattern::Concat(parts) => parts
            .iter()
            .map(|x| pattern_factor(x, stats, skew_aware, params, last_node_frac))
            .product(),
        PathPattern::Paren {
            inner, predicate, ..
        } => {
            pattern_factor(inner, stats, skew_aware, params, last_node_frac)
                * opt_predicate_selectivity(predicate, stats, params)
        }
        PathPattern::Quantified { inner, quantifier } => {
            let mut body_frac = 1.0;
            let body = pattern_factor(inner, stats, skew_aware, params, &mut body_frac);
            *last_node_frac = 1.0;
            quantified_factor(body, *quantifier)
        }
        PathPattern::Questioned(inner) => {
            let mut branch_frac = *last_node_frac;
            let f = pattern_factor(inner, stats, skew_aware, params, &mut branch_frac);
            *last_node_frac = 1.0;
            1.0 + f
        }
        PathPattern::Union(bs) | PathPattern::Alternation(bs) => {
            let entry = *last_node_frac;
            let sum = bs
                .iter()
                .map(|x| {
                    let mut branch_frac = entry;
                    pattern_factor(x, stats, skew_aware, params, &mut branch_frac)
                })
                .sum();
            *last_node_frac = 1.0;
            sum
        }
    }
}

/// `sum_{k=min}^{horizon} body^k` — the expected walks through a
/// quantifier whose one iteration multiplies the count by `body`.
fn quantified_factor(body: f64, q: Quantifier) -> f64 {
    let min = q.min;
    let max = q
        .max
        .unwrap_or(min.saturating_add(UNBOUNDED_HORIZON))
        .min(min.saturating_add(MAX_RANGE));
    let mut total = 0.0;
    let mut pow = body.powi(min as i32);
    for _ in min..=max {
        total += pow;
        pow *= body;
    }
    total
}

/// Fraction of nodes admitted by a node pattern.
fn node_selectivity(np: &NodePattern, stats: &GraphStats, params: &Params) -> f64 {
    let label = match &np.label {
        Some(l) => node_label_fraction(l, stats),
        None => 1.0,
    };
    (label * opt_predicate_selectivity(&np.predicate, stats, params)).clamp(0.0, 1.0)
}

/// Fraction of nodes whose label set satisfies `l`, under independence
/// (`&` takes the rarer side, `|` adds, `!` complements).
fn node_label_fraction(l: &LabelExpr, stats: &GraphStats) -> f64 {
    if stats.node_count == 0 {
        return 0.0;
    }
    let n = stats.node_count as f64;
    let frac = match l {
        LabelExpr::Wildcard => stats.labeled_node_count as f64 / n,
        LabelExpr::Label(name) => stats.nodes_with_label(name) as f64 / n,
        LabelExpr::Not(e) => 1.0 - node_label_fraction(e, stats),
        LabelExpr::And(a, b) => node_label_fraction(a, stats).min(node_label_fraction(b, stats)),
        LabelExpr::Or(a, b) => node_label_fraction(a, stats) + node_label_fraction(b, stats),
    };
    frac.clamp(0.0, 1.0)
}

/// Expected adjacency steps per node admitted by an edge pattern: the
/// matching directed/undirected edge tallies spread over all nodes, scaled
/// by how many of an edge's incidences the orientation admits.
///
/// `source_frac` is the selectivity of the node test preceding the edge
/// (`1.0` when unknown): the skewed-hub correction. A plain average
/// assumes matching edges spread uniformly over *all* nodes, which
/// collapses when a rare node label picks out exactly the hubs the edges
/// concentrate on (the star workload of `benches/joins.rs`). The
/// corrected model assumes the opposite extreme — every matching
/// traversal is incident to the candidate set — but caps the resulting
/// per-candidate fan-out with the *observed* per-label max degree from
/// [`GraphStats::max_degrees`], which is an exact bound on any single
/// node. The result is `min(traversals / candidates, max degree)`, never
/// below the plain average.
fn edge_fanout(ep: &EdgePattern, stats: &GraphStats, source_frac: f64, params: &Params) -> f64 {
    if stats.node_count == 0 {
        return 0.0;
    }
    let n = stats.node_count as f64;
    let (directed, undirected) = matching_edges(&ep.label, stats);
    let traversals = match ep.direction {
        // A directed edge is forward-traversable from exactly one node.
        Direction::Right | Direction::Left => directed,
        // An undirected edge is traversable from both ends.
        Direction::Undirected => 2.0 * undirected,
        Direction::LeftOrRight => 2.0 * directed,
        Direction::LeftOrUndirected | Direction::UndirectedOrRight => directed + 2.0 * undirected,
        Direction::Any => 2.0 * (directed + undirected),
    };
    let mut per_node = traversals / n;
    if source_frac < 1.0 {
        let label = match &ep.label {
            Some(LabelExpr::Label(name)) => Some(name.as_str()),
            _ => None, // compound constraints fall back to the overall bound
        };
        let max = stats.max_degrees(label);
        let cap = match ep.direction {
            Direction::Right => max.bound(true, false, false),
            Direction::Left => max.bound(false, true, false),
            Direction::Undirected => max.bound(false, false, true),
            Direction::LeftOrRight => max.bound(true, true, false),
            Direction::LeftOrUndirected => max.bound(false, true, true),
            Direction::UndirectedOrRight => max.bound(true, false, true),
            Direction::Any => max.bound(true, true, true),
        } as f64;
        let candidates = (n * source_frac).max(1.0);
        per_node = per_node.max((traversals / candidates).min(cap));
    }
    per_node * opt_predicate_selectivity(&ep.predicate, stats, params)
}

/// Estimated `(directed, undirected)` edge counts matching a label
/// constraint. Plain labels use the exact per-label tallies; compound
/// expressions fall back to a fraction of the overall split (label
/// distribution assumed independent of orientation).
fn matching_edges(label: &Option<LabelExpr>, stats: &GraphStats) -> (f64, f64) {
    match label {
        None => (
            stats.directed_edge_count as f64,
            stats.undirected_edge_count as f64,
        ),
        Some(LabelExpr::Label(name)) => {
            let tallies = stats.edges_with_label(name);
            (tallies.directed as f64, tallies.undirected as f64)
        }
        Some(expr) => {
            let frac = edge_label_fraction(expr, stats);
            (
                frac * stats.directed_edge_count as f64,
                frac * stats.undirected_edge_count as f64,
            )
        }
    }
}

/// Fraction of edges whose label set satisfies `l`.
fn edge_label_fraction(l: &LabelExpr, stats: &GraphStats) -> f64 {
    if stats.edge_count == 0 {
        return 0.0;
    }
    let e = stats.edge_count as f64;
    let frac = match l {
        LabelExpr::Wildcard => stats.labeled_edge_count as f64 / e,
        LabelExpr::Label(name) => stats.edges_with_label(name).total() as f64 / e,
        LabelExpr::Not(x) => 1.0 - edge_label_fraction(x, stats),
        LabelExpr::And(a, b) => edge_label_fraction(a, stats).min(edge_label_fraction(b, stats)),
        LabelExpr::Or(a, b) => edge_label_fraction(a, stats) + edge_label_fraction(b, stats),
    };
    frac.clamp(0.0, 1.0)
}

fn opt_predicate_selectivity(e: &Option<Expr>, stats: &GraphStats, params: &Params) -> f64 {
    e.as_ref()
        .map_or(1.0, |e| predicate_selectivity(e, stats, params))
}

/// Selectivity of a prefilter. Equality against a literal — or against a
/// `$name` parameter whose value is bound in `params` — uses the
/// distinct-value hint for the property (`1/distinct`); an equality
/// against an *unbound* parameter, whose constant the planner cannot see,
/// falls back to the default. Boolean structure composes under
/// independence; everything else gets the default.
fn predicate_selectivity(e: &Expr, stats: &GraphStats, params: &Params) -> f64 {
    let sel = match e {
        Expr::Cmp(CmpOp::Eq, a, b) => match (a.as_ref(), b.as_ref()) {
            (Expr::Property(_, key), Expr::Literal(_))
            | (Expr::Literal(_), Expr::Property(_, key)) => distinct_hint(key, stats),
            (Expr::Property(_, key), Expr::Parameter(name))
            | (Expr::Parameter(name), Expr::Property(_, key)) => {
                if params.contains(name) {
                    // Bound at execute time: as informative as a literal.
                    distinct_hint(key, stats)
                } else {
                    DEFAULT_PREDICATE_SELECTIVITY
                }
            }
            _ => DEFAULT_PREDICATE_SELECTIVITY,
        },
        Expr::And(a, b) => {
            predicate_selectivity(a, stats, params) * predicate_selectivity(b, stats, params)
        }
        Expr::Or(a, b) => {
            predicate_selectivity(a, stats, params) + predicate_selectivity(b, stats, params)
        }
        Expr::Not(a) => 1.0 - predicate_selectivity(a, stats, params),
        Expr::Literal(_) => 1.0,
        _ => DEFAULT_PREDICATE_SELECTIVITY,
    };
    sel.clamp(0.0, 1.0)
}

fn distinct_hint(key: &str, stats: &GraphStats) -> f64 {
    match stats.distinct_values(key) {
        Some(d) => 1.0 / d.max(1) as f64,
        None => DEFAULT_PREDICATE_SELECTIVITY,
    }
}

// ---------------------------------------------------------------------------
// The cost report (EXPLAIN with statistics)
// ---------------------------------------------------------------------------

/// Which merge the executor runs for one stage of the chosen order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JoinAlgo {
    /// The first stage: its bindings seed the accumulation.
    Scan,
    /// Equi-keys exist and hash joins are enabled.
    Hash,
    /// Equi-keys exist but hash joins are disabled.
    NestedLoop,
    /// No shared singleton variables with the stages merged so far.
    Cartesian,
}

impl fmt::Display for JoinAlgo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JoinAlgo::Scan => write!(f, "scan"),
            JoinAlgo::Hash => write!(f, "hash join"),
            JoinAlgo::NestedLoop => write!(f, "nested-loop join"),
            JoinAlgo::Cartesian => write!(f, "cartesian nested loop"),
        }
    }
}

/// One step of the chosen execution order.
#[derive(Clone, Debug)]
pub struct CostStep {
    /// Declaration index of the stage executed at this step.
    pub stage: usize,
    /// Estimated bindings the stage produces (the skew-aware model the
    /// executor orders by: per-label max degree caps the expansion
    /// factor when edges may concentrate on a small candidate set).
    pub estimate: f64,
    /// The same estimate under the plain average-degree model — shown by
    /// EXPLAIN next to [`CostStep::estimate`] when the skew correction
    /// changed the number.
    pub avg_estimate: f64,
    /// Equi-join keys against the stages merged before it.
    pub keys: Vec<String>,
    /// How the merge runs.
    pub algo: JoinAlgo,
    /// Semi-join pushdown decisions for this step: for each node-typed
    /// join key, whether the accumulated key set is pushed into this
    /// stage's search as a filter (see [`SemiJoinDecision`]). Empty when
    /// pushdown is inadmissible for the stage.
    pub semi_joins: Vec<SemiJoinDecision>,
}

/// The cost-based execution decision for one (plan, graph) pair: per-stage
/// cardinality estimates, the chosen stage order, and the join algorithm
/// per step. Surfaced by `--explain` in the CLI.
///
/// ```
/// use gpml_core::ast::*;
/// use gpml_core::eval::EvalOptions;
/// use gpml_core::plan::{prepare, JoinAlgo};
/// use property_graph::{Endpoints, PropertyGraph};
///
/// // MATCH (x)-[e]->(m), (m)-[f]->(y) over a 3-chain.
/// let stage = |a: &str, e: &str, b: &str| {
///     PathPatternExpr::plain(PathPattern::concat(vec![
///         PathPattern::Node(NodePattern::var(a)),
///         PathPattern::Edge(EdgePattern::any(Direction::Right).with_var(e)),
///         PathPattern::Node(NodePattern::var(b)),
///     ]))
/// };
/// let pattern = GraphPattern {
///     paths: vec![stage("x", "e", "m"), stage("m", "f", "y")],
///     where_clause: None,
/// };
/// let mut g = PropertyGraph::new();
/// let ids: Vec<_> = (0..3).map(|i| g.add_node(&format!("n{i}"), ["N"], [])).collect();
/// g.add_edge("e0", Endpoints::directed(ids[0], ids[1]), ["T"], []);
/// g.add_edge("e1", Endpoints::directed(ids[1], ids[2]), ["T"], []);
///
/// let query = prepare(&pattern, &EvalOptions::default())?;
/// let report = query.cost_report(&g);
/// assert_eq!(report.steps.len(), 2);
/// assert_eq!(report.steps[0].algo, JoinAlgo::Scan);
/// assert_eq!(report.steps[1].keys, vec!["m".to_owned()]);
/// # Ok::<(), gpml_core::Error>(())
/// ```
#[derive(Clone, Debug)]
pub struct CostReport {
    /// `|N|` of the graph the report was computed against.
    pub node_count: usize,
    /// `|E|` of the graph the report was computed against.
    pub edge_count: usize,
    /// Whether the order below is cost-chosen or declaration order.
    pub reordered: bool,
    /// The execution steps, in chosen order.
    pub steps: Vec<CostStep>,
}

impl CostReport {
    /// Computes the report exactly the way `PreparedQuery::execute`
    /// decides: same estimates, same greedy order, same join algorithm
    /// selection under `opts`.
    pub(crate) fn compute(
        plan: &ExecutablePlan,
        stats: &GraphStats,
        opts: &EvalOptions,
        params: &Params,
    ) -> CostReport {
        let est = estimates(plan, stats, true, params);
        let avg = estimates(plan, stats, false, params);
        let order = if opts.reorder_stages {
            order_from(&est, plan, stats)
        } else {
            (0..plan.stages.len()).collect()
        };
        let mut steps = Vec::with_capacity(order.len());
        let mut placed: Vec<usize> = Vec::new();
        for &stage in &order {
            let keys = plan.join_keys(stage, &placed);
            let algo = if placed.is_empty() {
                JoinAlgo::Scan
            } else if keys.is_empty() {
                JoinAlgo::Cartesian
            } else if opts.hash_join {
                JoinAlgo::Hash
            } else {
                JoinAlgo::NestedLoop
            };
            let semi_joins = semi_join_decisions(plan, stats, &est, stage, &placed, &keys, opts);
            steps.push(CostStep {
                stage,
                estimate: est[stage],
                avg_estimate: avg[stage],
                keys,
                algo,
                semi_joins,
            });
            placed.push(stage);
        }
        CostReport {
            node_count: stats.node_count,
            edge_count: stats.edge_count,
            reordered: opts.reorder_stages,
            steps,
        }
    }

    /// The chosen stage order (declaration indices).
    pub fn order(&self) -> Vec<usize> {
        self.steps.iter().map(|s| s.stage).collect()
    }
}

pub(crate) fn order_from(est: &[f64], plan: &ExecutablePlan, stats: &GraphStats) -> Vec<usize> {
    if stats.node_count == 0 {
        return (0..plan.stages.len()).collect();
    }
    greedy_order(est, &plan.joins)
}

// ---------------------------------------------------------------------------
// Semi-join pushdown decisions (sideways information passing)
// ---------------------------------------------------------------------------

/// One semi-join pushdown decision: whether the distinct values a join key
/// has accumulated so far should be pushed *into* the next stage's search
/// as a node filter.
///
/// The executor and EXPLAIN both obtain their decisions from the same
/// internal function (`semi_join_decisions`), so the report names
/// exactly the filters an execution with the same options applies.
#[derive(Clone, Debug, PartialEq)]
pub struct SemiJoinDecision {
    /// The shared singleton node variable the filter keys on.
    pub var: String,
    /// Estimated distinct key nodes accumulated by the time this stage
    /// runs: the cheapest already-placed stage binding the variable,
    /// capped by the degree histogram (a key adjacent to an edge pattern
    /// must have degree ≥ 1) and the node count.
    pub keys_estimate: f64,
    /// Whether the filter is pushed: the estimated key set must be
    /// *smaller* than the stage it would prune — filtering the bigger
    /// side with the smaller key set — otherwise the per-candidate set
    /// probes cost more than the bindings they could save.
    pub apply: bool,
}

/// The semi-join pushdown decisions for the stage at `stage` given the
/// already-merged `placed` stages and their equi-join `keys`.
///
/// Returns one decision per *node-typed* join key when pushdown is
/// admissible, and an empty vector when it is not: pushdown is disabled
/// by [`EvalOptions::semi_join`], by a per-stage selector (selector
/// application sees the stage's full binding set, so pre-join pruning
/// could change which representatives survive), and by the endpoint-only
/// SPARQL mode (whose collapse is likewise a whole-stage pass).
pub(crate) fn semi_join_decisions(
    plan: &ExecutablePlan,
    stats: &GraphStats,
    est: &[f64],
    stage: usize,
    placed: &[usize],
    keys: &[String],
    opts: &EvalOptions,
) -> Vec<SemiJoinDecision> {
    if !opts.semi_join
        || opts.mode == MatchMode::EndpointOnly
        || plan.stages[stage].expr.selector.is_some()
        || placed.is_empty()
    {
        return Vec::new();
    }
    keys.iter()
        .filter(|k| {
            plan.analysis
                .var(k)
                .is_some_and(|info| info.kind == VarKind::Node)
        })
        .map(|k| {
            let keys_estimate = key_count_estimate(plan, stats, est, stage, placed, k);
            SemiJoinDecision {
                var: k.clone(),
                keys_estimate,
                apply: keys_estimate < est[stage],
            }
        })
        .collect()
}

/// Estimated distinct nodes bound to join key `k` across the accumulated
/// rows when `stage` runs: at most the estimate of the cheapest placed
/// stage binding `k`, refined by the statistics catalog's degree
/// histograms — a key bound inside a stage that traverses edges must
/// land on a node of degree ≥ 1, and a key whose node pattern carries a
/// plain label can hold at most that label's (histogram-counted)
/// population.
fn key_count_estimate(
    plan: &ExecutablePlan,
    stats: &GraphStats,
    est: &[f64],
    stage: usize,
    placed: &[usize],
    k: &str,
) -> f64 {
    let mut keys_est = stats.node_count as f64;
    let mut via_edges = false;
    let mut label: Option<&str> = None;
    for &j in placed {
        let shares = plan.joins.iter().any(|je| {
            ((je.left == stage && je.right == j) || (je.right == stage && je.left == j))
                && je.on.iter().any(|v| v == k)
        });
        if !shares {
            continue;
        }
        keys_est = keys_est.min(est[j]);
        let pattern = &plan.stages[j].expr.pattern;
        via_edges |= has_edge_pattern(pattern);
        if label.is_none() {
            label = plain_node_label(pattern, k);
        }
    }
    let population = if via_edges {
        // The histogram only records nodes with at least one adjacency
        // step, which is exactly the set an edge-traversing binding can
        // place the key on.
        stats.histogram(label).nodes() as f64
    } else if let Some(l) = label {
        stats.nodes_with_label(l) as f64
    } else {
        stats.node_count as f64
    };
    keys_est.min(population)
}

/// Whether the pattern contains any edge traversal.
fn has_edge_pattern(p: &PathPattern) -> bool {
    match p {
        PathPattern::Node(_) => false,
        PathPattern::Edge(_) => true,
        PathPattern::Concat(parts) => parts.iter().any(has_edge_pattern),
        PathPattern::Paren { inner, .. }
        | PathPattern::Quantified { inner, .. }
        | PathPattern::Questioned(inner) => has_edge_pattern(inner),
        PathPattern::Union(bs) | PathPattern::Alternation(bs) => bs.iter().any(has_edge_pattern),
    }
}

/// The plain label constraint on the node pattern binding `var`, if it
/// has exactly one (compound constraints fall back to the unlabeled
/// population bound).
fn plain_node_label<'a>(p: &'a PathPattern, var: &str) -> Option<&'a str> {
    match p {
        PathPattern::Node(np) => match (&np.var, &np.label) {
            (Some(v), Some(LabelExpr::Label(name))) if v == var => Some(name),
            _ => None,
        },
        PathPattern::Edge(_) => None,
        PathPattern::Concat(parts) => parts.iter().find_map(|x| plain_node_label(x, var)),
        PathPattern::Paren { inner, .. }
        | PathPattern::Quantified { inner, .. }
        | PathPattern::Questioned(inner) => plain_node_label(inner, var),
        PathPattern::Union(bs) | PathPattern::Alternation(bs) => {
            bs.iter().find_map(|x| plain_node_label(x, var))
        }
    }
}

/// Renders an estimate compactly: two decimals below ten, integral above.
pub(crate) fn fmt_estimate(rows: f64) -> String {
    if rows < 10.0 {
        format!("{rows:.2}")
    } else {
        format!("{rows:.0}")
    }
}

impl fmt::Display for CostReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "  cost model ({} nodes, {} edges, {}):",
            self.node_count,
            self.edge_count,
            if self.reordered {
                "cost-based order"
            } else {
                "declaration order"
            }
        )?;
        for step in &self.steps {
            write!(
                f,
                "    {} stage {} (est ~{} rows",
                step.algo,
                step.stage,
                fmt_estimate(step.estimate)
            )?;
            // Surface the skew correction: the plain average-degree
            // number next to the max-degree-capped one it replaced.
            if (step.estimate - step.avg_estimate).abs() > 0.005 {
                write!(f, ", avg-degree model ~{}", fmt_estimate(step.avg_estimate))?;
            }
            if step.keys.is_empty() {
                writeln!(f, ")")?;
            } else {
                writeln!(f, ") on {{{}}}", step.keys.join(", "))?;
            }
            for d in &step.semi_joins {
                writeln!(
                    f,
                    "      semi-join on {}: ~{} keys vs ~{} rows \u{2192} {}",
                    d.var,
                    fmt_estimate(d.keys_estimate),
                    fmt_estimate(step.estimate),
                    if d.apply {
                        "push filter"
                    } else {
                        "skip (key set not smaller)"
                    }
                )?;
            }
        }
        let order: Vec<String> = self.order().iter().map(|i| i.to_string()).collect();
        write!(f, "    order: {}", order.join(" \u{2192} "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{GraphPattern, NodePattern, PathPatternExpr};
    use crate::eval::EvalOptions;
    use crate::plan::prepare;
    use property_graph::{Endpoints, PropertyGraph, Value};

    fn node(v: &str) -> PathPattern {
        PathPattern::Node(NodePattern::var(v))
    }

    fn labeled(v: &str, l: &str) -> PathPattern {
        PathPattern::Node(NodePattern::var(v).with_label(LabelExpr::label(l)))
    }

    fn edge_r(v: &str) -> PathPattern {
        PathPattern::Edge(EdgePattern::any(Direction::Right).with_var(v))
    }

    /// A hub graph: many `Big` spokes into the hub, two `Rare` nodes.
    fn hub() -> PropertyGraph {
        let mut g = PropertyGraph::new();
        let h = g.add_node("hub", ["Hub"], []);
        for i in 0..20 {
            let s = g.add_node(&format!("s{i}"), ["Big"], []);
            g.add_edge(&format!("e{i}"), Endpoints::directed(s, h), ["In"], []);
        }
        for i in 0..2 {
            let r = g.add_node(&format!("r{i}"), ["Rare"], []);
            g.add_edge(&format!("re{i}"), Endpoints::directed(h, r), ["Out"], []);
        }
        g
    }

    #[test]
    fn rare_label_estimates_below_common_label() {
        let gp = GraphPattern {
            paths: vec![
                PathPatternExpr::plain(PathPattern::concat(vec![
                    labeled("x", "Big"),
                    edge_r("e"),
                    node("h"),
                ])),
                PathPatternExpr::plain(PathPattern::concat(vec![
                    node("h"),
                    edge_r("f"),
                    labeled("y", "Rare"),
                ])),
            ],
            where_clause: None,
        };
        let q = prepare(&gp, &EvalOptions::default()).unwrap();
        let g = hub();
        let est = estimates(q.plan(), g.stats(), true, &Params::new());
        assert!(
            est[1] < est[0],
            "rare stage must be cheaper: {est:?} (order should start there)"
        );
        let order = order_from(&est, q.plan(), g.stats());
        assert_eq!(order[0], 1, "cheapest stage first: {order:?}");
    }

    #[test]
    fn max_degree_cap_prices_skewed_hubs() {
        // (h:Hub)<-[:In]-(x:Big): 20 spokes all enter the single hub. The
        // average-degree model spreads the 20 In-edges over all 23 nodes
        // and predicts ~1 row from the rare Hub start; the max-degree
        // model knows a single node can absorb all 20.
        let gp = GraphPattern::single(PathPattern::concat(vec![
            labeled("h", "Hub"),
            PathPattern::Edge(
                EdgePattern::any(Direction::Left)
                    .with_var("e")
                    .with_label(LabelExpr::label("In")),
            ),
            labeled("x", "Big"),
        ]));
        let q = prepare(&gp, &EvalOptions::default()).unwrap();
        let g = hub();
        let skewed = estimates(q.plan(), g.stats(), true, &Params::new())[0];
        let naive = estimates(q.plan(), g.stats(), false, &Params::new())[0];
        // True cardinality is 20; the naive model is an order of
        // magnitude short, the capped model lands on it.
        assert!(naive < 2.0, "naive should underestimate: {naive}");
        assert!(
            (skewed - 20.0).abs() < 4.0,
            "capped estimate should approach 20: {skewed}"
        );

        // And EXPLAIN surfaces the before/after pair.
        let report =
            CostReport::compute(q.plan(), g.stats(), &EvalOptions::default(), &Params::new());
        let text = report.to_string();
        assert!(text.contains("avg-degree model"), "{text}");
    }

    #[test]
    fn uniform_graphs_are_unaffected_by_the_cap() {
        // A 1:1 layered chain: no skew, so both models agree.
        let mut g = PropertyGraph::new();
        let mut prev = None;
        for i in 0..10 {
            let n = g.add_node(&format!("n{i}"), [if i % 2 == 0 { "A" } else { "B" }], []);
            if let Some(p) = prev {
                g.add_edge(&format!("e{i}"), Endpoints::directed(p, n), ["S"], []);
            }
            prev = Some(n);
        }
        let gp = GraphPattern::single(PathPattern::concat(vec![
            labeled("a", "A"),
            PathPattern::Edge(EdgePattern::any(Direction::Right).with_label(LabelExpr::label("S"))),
            labeled("b", "B"),
        ]));
        let q = prepare(&gp, &EvalOptions::default()).unwrap();
        let skewed = estimates(q.plan(), g.stats(), true, &Params::new())[0];
        let naive = estimates(q.plan(), g.stats(), false, &Params::new())[0];
        // max degree 1 caps the concentration assumption right back down.
        assert!(
            (skewed - naive).abs() <= naive + 1.0,
            "cap must stay near the average on uniform graphs: {skewed} vs {naive}"
        );
    }

    #[test]
    fn greedy_order_prefers_connected_stages() {
        // Estimates: stage 2 cheapest, but stage 1 is the only one joined
        // to it; stage 0 is disconnected and must come last despite being
        // cheaper than stage 1.
        let est = [5.0, 50.0, 1.0];
        let joins = vec![JoinEdge {
            left: 1,
            right: 2,
            on: vec!["m".to_owned()],
        }];
        assert_eq!(greedy_order(&est, &joins), vec![2, 1, 0]);
    }

    #[test]
    fn greedy_order_is_declaration_order_on_ties() {
        let est = [1.0, 1.0, 1.0];
        let joins = vec![
            JoinEdge {
                left: 0,
                right: 1,
                on: vec!["a".to_owned()],
            },
            JoinEdge {
                left: 1,
                right: 2,
                on: vec!["b".to_owned()],
            },
        ];
        assert_eq!(greedy_order(&est, &joins), vec![0, 1, 2]);
    }

    #[test]
    fn empty_graph_falls_back_to_declaration_order() {
        let gp = GraphPattern {
            paths: vec![
                PathPatternExpr::plain(PathPattern::concat(vec![
                    labeled("x", "Big"),
                    edge_r("e"),
                    node("h"),
                ])),
                PathPatternExpr::plain(labeled("y", "Rare")),
            ],
            where_clause: None,
        };
        let q = prepare(&gp, &EvalOptions::default()).unwrap();
        let g = PropertyGraph::new();
        let est = estimates(q.plan(), g.stats(), true, &Params::new());
        assert_eq!(order_from(&est, q.plan(), g.stats()), vec![0, 1]);
    }

    #[test]
    fn equality_hint_uses_distinct_values() {
        let mut g = PropertyGraph::new();
        for i in 0..10 {
            g.add_node(
                &format!("n{i}"),
                ["N"],
                [("k", Value::Int(i)), ("c", Value::Int(i % 2))],
            );
        }
        let stats = g.stats();
        let eq = |key: &str| {
            predicate_selectivity(
                &Expr::prop("x", key).eq(Expr::lit(1)),
                stats,
                &Params::new(),
            )
        };
        assert!((eq("k") - 0.1).abs() < 1e-9);
        assert!((eq("c") - 0.5).abs() < 1e-9);
        assert!((eq("missing") - DEFAULT_PREDICATE_SELECTIVITY).abs() < 1e-9);
    }

    #[test]
    fn quantifier_factor_sums_lengths() {
        // body fan-out 2, {1,3}: 2 + 4 + 8.
        assert!((quantified_factor(2.0, Quantifier::range(1, Some(3))) - 14.0).abs() < 1e-9);
        // Unbounded: truncated horizon of UNBOUNDED_HORIZON extra lengths.
        let unbounded = quantified_factor(2.0, Quantifier::plus());
        assert!((unbounded - 14.0).abs() < 1e-9);
        // Zero-width bodies do not diverge.
        assert!(quantified_factor(0.0, Quantifier::star()) >= 1.0);
    }

    #[test]
    fn cost_report_mirrors_execution_choices() {
        let gp = GraphPattern {
            paths: vec![
                PathPatternExpr::plain(PathPattern::concat(vec![
                    labeled("x", "Big"),
                    edge_r("e"),
                    node("h"),
                ])),
                PathPatternExpr::plain(PathPattern::concat(vec![
                    node("h"),
                    edge_r("f"),
                    labeled("y", "Rare"),
                ])),
            ],
            where_clause: None,
        };
        let q = prepare(&gp, &EvalOptions::default()).unwrap();
        let g = hub();
        let report =
            CostReport::compute(q.plan(), g.stats(), &EvalOptions::default(), &Params::new());
        assert_eq!(report.order(), vec![1, 0]);
        assert_eq!(report.steps[0].algo, JoinAlgo::Scan);
        assert_eq!(report.steps[1].algo, JoinAlgo::Hash);
        assert_eq!(report.steps[1].keys, vec!["h".to_owned()]);
        let text = report.to_string();
        assert!(text.contains("hash join"), "{text}");
        assert!(text.contains("order: 1 \u{2192} 0"), "{text}");

        let nested = CostReport::compute(
            q.plan(),
            g.stats(),
            &EvalOptions {
                hash_join: false,
                reorder_stages: false,
                ..EvalOptions::default()
            },
            &Params::new(),
        );
        assert_eq!(nested.order(), vec![0, 1]);
        assert_eq!(nested.steps[1].algo, JoinAlgo::NestedLoop);
    }

    /// Two stages joined on `h`: a cheap rare-label stage and an
    /// expensive big-label stage, over the hub graph.
    fn semi_join_pattern() -> GraphPattern {
        GraphPattern {
            paths: vec![
                PathPatternExpr::plain(PathPattern::concat(vec![
                    labeled("x", "Big"),
                    edge_r("e"),
                    node("h"),
                ])),
                PathPatternExpr::plain(PathPattern::concat(vec![
                    node("h"),
                    edge_r("f"),
                    labeled("y", "Rare"),
                ])),
            ],
            where_clause: None,
        }
    }

    #[test]
    fn semi_join_filters_the_bigger_stage_with_the_smaller_key_set() {
        let q = prepare(&semi_join_pattern(), &EvalOptions::default()).unwrap();
        let g = hub();
        let report =
            CostReport::compute(q.plan(), g.stats(), &EvalOptions::default(), &Params::new());
        // The rare stage scans first; its tiny key set is pushed into the
        // big stage's search.
        assert_eq!(report.order(), vec![1, 0]);
        assert!(report.steps[0].semi_joins.is_empty(), "scan has no filter");
        let decisions = &report.steps[1].semi_joins;
        assert_eq!(decisions.len(), 1, "{decisions:?}");
        assert_eq!(decisions[0].var, "h");
        assert!(decisions[0].apply, "{decisions:?}");
        assert!(
            decisions[0].keys_estimate < report.steps[1].estimate,
            "{decisions:?} vs {}",
            report.steps[1].estimate
        );
        // EXPLAIN names the decision.
        let text = report.to_string();
        assert!(text.contains("semi-join on h"), "{text}");
        assert!(text.contains("push filter"), "{text}");
    }

    #[test]
    fn semi_join_is_disabled_by_option_mode_and_selector() {
        let g = hub();
        let q = prepare(&semi_join_pattern(), &EvalOptions::default()).unwrap();
        let off = EvalOptions {
            semi_join: false,
            ..EvalOptions::default()
        };
        let report = CostReport::compute(q.plan(), g.stats(), &off, &Params::new());
        assert!(report.steps.iter().all(|s| s.semi_joins.is_empty()));

        let endpoint = EvalOptions {
            mode: MatchMode::EndpointOnly,
            ..EvalOptions::default()
        };
        let report = CostReport::compute(q.plan(), g.stats(), &endpoint, &Params::new());
        assert!(report.steps.iter().all(|s| s.semi_joins.is_empty()));

        // A per-stage selector sees the stage's full binding set, so the
        // selected stage must not be pre-filtered.
        let mut gp = semi_join_pattern();
        gp.paths[0].selector = Some(crate::ast::Selector::AnyShortest);
        let q = prepare(&gp, &EvalOptions::default()).unwrap();
        let report =
            CostReport::compute(q.plan(), g.stats(), &EvalOptions::default(), &Params::new());
        let selected = report.steps.iter().find(|s| s.stage == 0).unwrap();
        assert!(selected.semi_joins.is_empty(), "{:?}", selected.semi_joins);
    }

    #[test]
    fn key_estimate_is_capped_by_the_degree_histogram() {
        // The rare stage traverses edges, so its keys must have degree
        // ≥ 1: the estimate can never exceed the histogram population.
        let q = prepare(&semi_join_pattern(), &EvalOptions::default()).unwrap();
        let g = hub();
        let stats = g.stats();
        let est = estimates(q.plan(), stats, true, &Params::new());
        let d = semi_join_decisions(
            q.plan(),
            stats,
            &est,
            0,
            &[1],
            &["h".to_owned()],
            &EvalOptions::default(),
        );
        assert_eq!(d.len(), 1);
        assert!(
            d[0].keys_estimate <= stats.histogram(None).nodes() as f64,
            "{d:?}"
        );
    }
}
