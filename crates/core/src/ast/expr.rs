//! The expression language used in `WHERE` clauses (§4.1, §4.4, §4.7).
//!
//! Expressions appear in three positions with different powers:
//!
//! * inside element patterns (`(x:Account WHERE x.isBlocked='no')`) —
//!   *prefilters* over singleton references;
//! * inside parenthesized path patterns — per-iteration prefilters;
//! * in the final `WHERE` after `MATCH` — *postfilters*, which may aggregate
//!   group variables (`SUM(t.amount) > 10M`).
//!
//! Evaluation follows SQL-style three-valued logic: accessing a property an
//! element lacks yields `NULL`, comparisons involving `NULL` are *unknown*,
//! and a filter keeps a row only when its condition is definitely true.

use std::fmt;

use property_graph::Value;

/// Comparison operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Applies the operator to an [`Ordering`](std::cmp::Ordering).
    pub fn test(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        matches!(
            (self, ord),
            (CmpOp::Eq, Equal)
                | (CmpOp::Ne, Less | Greater)
                | (CmpOp::Lt, Less)
                | (CmpOp::Le, Less | Equal)
                | (CmpOp::Gt, Greater)
                | (CmpOp::Ge, Greater | Equal)
        )
    }
}

/// Binary arithmetic operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ArithOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/` (unknown on division by zero)
    Div,
}

/// Aggregate functions over group variables (§4.4, §5.3).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// `COUNT(...)`
    Count,
    /// `SUM(...)`
    Sum,
    /// `AVG(...)`
    Avg,
    /// `MIN(...)`
    Min,
    /// `MAX(...)`
    Max,
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Avg => "AVG",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
        };
        write!(f, "{s}")
    }
}

/// The argument of an aggregate.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum AggArg {
    /// `COUNT(e)` — counts bindings of the variable.
    Var(String),
    /// `COUNT(e.*)` — the paper's §5.3 form; also counts bindings.
    VarStar(String),
    /// `SUM(t.amount)` — aggregates a property over the group.
    Property(String, String),
}

impl AggArg {
    /// The group variable the aggregate ranges over.
    pub fn var(&self) -> &str {
        match self {
            AggArg::Var(v) | AggArg::VarStar(v) | AggArg::Property(v, _) => v,
        }
    }
}

/// A scalar expression.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Expr {
    /// A literal value such as `'no'`, `5M`, or `TRUE`.
    Literal(Value),
    /// A `$name` query parameter: a placeholder for a value supplied at
    /// execute time (see [`crate::Params`]). Parameters keep the query
    /// text a reusable *skeleton* — one prepared plan serves every
    /// binding — which is what makes plan caching effective under
    /// parameterized traffic.
    Parameter(String),
    /// A bare element variable reference (`x`), used in element equality
    /// (GQL permits `p = q`), `SAME`, and `ALL_DIFFERENT`.
    Var(String),
    /// Property access `x.owner`.
    Property(String, String),
    /// `NOT e`
    Not(Box<Expr>),
    /// `e AND e`
    And(Box<Expr>, Box<Expr>),
    /// `e OR e`
    Or(Box<Expr>, Box<Expr>),
    /// Comparison `e <op> e`.
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    /// Arithmetic `e <op> e`.
    Arith(ArithOp, Box<Expr>, Box<Expr>),
    /// `e IS NULL` / `e IS NOT NULL`.
    IsNull(Box<Expr>, bool),
    /// `e IS DIRECTED` (§4.7): true iff the edge bound to the variable is
    /// directed.
    IsDirected(String),
    /// `s IS SOURCE OF e` (§4.7).
    IsSourceOf {
        /// The node variable tested.
        node: String,
        /// The edge variable tested against.
        edge: String,
    },
    /// `d IS DESTINATION OF e` (§4.7).
    IsDestinationOf {
        /// The node variable tested.
        node: String,
        /// The edge variable tested against.
        edge: String,
    },
    /// `SAME(p, q, ...)` (§4.7): all references bound to the same element.
    Same(Vec<String>),
    /// `ALL_DIFFERENT(p, q, ...)` (§4.7): pairwise distinct elements.
    AllDifferent(Vec<String>),
    /// Aggregate over a group variable; `distinct` implements
    /// `COUNT(DISTINCT e)`.
    Aggregate {
        /// The aggregate function applied.
        func: AggFunc,
        /// What it ranges over (variable, `v.*`, or property).
        arg: AggArg,
        /// `COUNT(DISTINCT e)`-style deduplication before aggregating.
        distinct: bool,
    },
    /// `EXISTS { pattern }` — true when the subpattern has at least one
    /// match agreeing with the enclosing row on shared variables. The §3
    /// Cypher capability ("testing for the presence or absence of a path
    /// relative to an element specified in a match"); only allowed in the
    /// final `WHERE` postfilter.
    Exists(Box<crate::ast::GraphPattern>),
}

impl Expr {
    /// Literal shorthand.
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Literal(v.into())
    }

    /// Property access shorthand.
    pub fn prop(var: impl Into<String>, key: impl Into<String>) -> Expr {
        Expr::Property(var.into(), key.into())
    }

    /// `self AND other`.
    pub fn and(self, other: Expr) -> Expr {
        Expr::And(Box::new(self), Box::new(other))
    }

    /// `self OR other`.
    pub fn or(self, other: Expr) -> Expr {
        Expr::Or(Box::new(self), Box::new(other))
    }

    /// `NOT self`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Expr {
        Expr::Not(Box::new(self))
    }

    /// Comparison shorthand.
    pub fn cmp(op: CmpOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Cmp(op, Box::new(lhs), Box::new(rhs))
    }

    /// Equality shorthand.
    pub fn eq(self, rhs: Expr) -> Expr {
        Expr::cmp(CmpOp::Eq, self, rhs)
    }

    /// Walks all variable references in the expression, passing whether
    /// each occurs inside an aggregate.
    pub fn visit_vars<'a>(&'a self, f: &mut impl FnMut(&'a str, bool)) {
        match self {
            Expr::Literal(_) | Expr::Parameter(_) => {}
            Expr::Var(v) => f(v, false),
            Expr::Property(v, _) => f(v, false),
            Expr::Not(e) | Expr::IsNull(e, _) => e.visit_vars(f),
            Expr::And(a, b) | Expr::Or(a, b) => {
                a.visit_vars(f);
                b.visit_vars(f);
            }
            Expr::Cmp(_, a, b) | Expr::Arith(_, a, b) => {
                a.visit_vars(f);
                b.visit_vars(f);
            }
            Expr::IsDirected(e) => f(e, false),
            Expr::IsSourceOf { node, edge } | Expr::IsDestinationOf { node, edge } => {
                f(node, false);
                f(edge, false);
            }
            Expr::Same(vs) | Expr::AllDifferent(vs) => {
                for v in vs {
                    f(v, false);
                }
            }
            Expr::Aggregate { arg, .. } => f(arg.var(), true),
            // EXISTS correlates implicitly by name; its variables live in
            // the subquery's own scope.
            Expr::Exists(_) => {}
        }
    }

    /// All aggregates contained in the expression.
    pub fn aggregates(&self) -> Vec<(&AggFunc, &AggArg)> {
        let mut out = Vec::new();
        self.collect_aggregates(&mut out);
        out
    }

    fn collect_aggregates<'a>(&'a self, out: &mut Vec<(&'a AggFunc, &'a AggArg)>) {
        match self {
            Expr::Aggregate { func, arg, .. } => out.push((func, arg)),
            Expr::Not(e) | Expr::IsNull(e, _) => e.collect_aggregates(out),
            Expr::And(a, b) | Expr::Or(a, b) | Expr::Cmp(_, a, b) | Expr::Arith(_, a, b) => {
                a.collect_aggregates(out);
                b.collect_aggregates(out);
            }
            _ => {}
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        write!(f, "{s}")
    }
}

impl fmt::Display for ArithOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ArithOp::Add => "+",
            ArithOp::Sub => "-",
            ArithOp::Mul => "*",
            ArithOp::Div => "/",
        };
        write!(f, "{s}")
    }
}

impl Expr {
    /// True when the expression re-parses as a primary or self-bracketed
    /// term, so it can appear as a comparison or arithmetic operand
    /// without extra parentheses.
    fn is_operand_safe(&self) -> bool {
        matches!(
            self,
            Expr::Literal(_)
                | Expr::Parameter(_)
                | Expr::Var(_)
                | Expr::Property(..)
                | Expr::Aggregate { .. }
                | Expr::Same(_)
                | Expr::AllDifferent(_)
                | Expr::Arith(..)
                | Expr::And(..)
                | Expr::Or(..)
        )
    }
}

/// Prints `e`, parenthesizing predicate-level forms that would otherwise
/// be unparseable as operands (e.g. `x = NOT y`).
struct Operand<'a>(&'a Expr);

impl fmt::Display for Operand<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_operand_safe() {
            write!(f, "{}", self.0)
        } else {
            write!(f, "({})", self.0)
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Literal(Value::Str(s)) => write!(f, "'{s}'"),
            Expr::Literal(v) => write!(f, "{v}"),
            Expr::Parameter(name) => write!(f, "${name}"),
            Expr::Var(v) => write!(f, "{v}"),
            Expr::Property(v, p) => write!(f, "{v}.{p}"),
            Expr::Not(e) => write!(f, "NOT ({e})"),
            Expr::And(a, b) => write!(f, "({a} AND {b})"),
            Expr::Or(a, b) => write!(f, "({a} OR {b})"),
            Expr::Cmp(op, a, b) => write!(f, "{}{op}{}", Operand(a), Operand(b)),
            Expr::Arith(op, a, b) => write!(f, "({}{op}{})", Operand(a), Operand(b)),
            Expr::IsNull(e, true) => write!(f, "{} IS NULL", Operand(e)),
            Expr::IsNull(e, false) => write!(f, "{} IS NOT NULL", Operand(e)),
            Expr::IsDirected(e) => write!(f, "{e} IS DIRECTED"),
            Expr::IsSourceOf { node, edge } => write!(f, "{node} IS SOURCE OF {edge}"),
            Expr::IsDestinationOf { node, edge } => {
                write!(f, "{node} IS DESTINATION OF {edge}")
            }
            Expr::Same(vs) => write!(f, "SAME({})", vs.join(", ")),
            Expr::AllDifferent(vs) => write!(f, "ALL_DIFFERENT({})", vs.join(", ")),
            Expr::Exists(gp) => write!(f, "EXISTS {{ {gp} }}"),
            Expr::Aggregate {
                func,
                arg,
                distinct,
            } => {
                write!(f, "{func}(")?;
                if *distinct {
                    write!(f, "DISTINCT ")?;
                }
                match arg {
                    AggArg::Var(v) => write!(f, "{v}")?,
                    AggArg::VarStar(v) => write!(f, "{v}.*")?,
                    AggArg::Property(v, p) => write!(f, "{v}.{p}")?,
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmp_op_semantics() {
        use std::cmp::Ordering::*;
        assert!(CmpOp::Eq.test(Equal));
        assert!(!CmpOp::Eq.test(Less));
        assert!(CmpOp::Ne.test(Greater));
        assert!(CmpOp::Le.test(Equal));
        assert!(CmpOp::Le.test(Less));
        assert!(!CmpOp::Lt.test(Equal));
        assert!(CmpOp::Ge.test(Greater));
    }

    #[test]
    fn display_roundtrippable_forms() {
        let e = Expr::prop("x", "isBlocked").eq(Expr::lit("no"));
        assert_eq!(e.to_string(), "x.isBlocked='no'");
        let agg = Expr::Aggregate {
            func: AggFunc::Sum,
            arg: AggArg::Property("t".into(), "amount".into()),
            distinct: false,
        };
        assert_eq!(agg.to_string(), "SUM(t.amount)");
        let c = Expr::Aggregate {
            func: AggFunc::Count,
            arg: AggArg::VarStar("e".into()),
            distinct: false,
        };
        assert_eq!(c.to_string(), "COUNT(e.*)");
    }

    #[test]
    fn visit_vars_flags_aggregated_references() {
        let e = Expr::prop("x", "a").eq(Expr::lit(1)).and(Expr::Aggregate {
            func: AggFunc::Sum,
            arg: AggArg::Property("t".into(), "amount".into()),
            distinct: false,
        });
        let mut seen = Vec::new();
        e.visit_vars(&mut |v, agg| seen.push((v.to_owned(), agg)));
        assert_eq!(seen, vec![("x".to_owned(), false), ("t".to_owned(), true)]);
    }

    #[test]
    fn aggregates_are_collected_through_arithmetic() {
        // COUNT(e.*)/(COUNT(e.*)+1) > 1 from §5.3.
        let count = || Expr::Aggregate {
            func: AggFunc::Count,
            arg: AggArg::VarStar("e".into()),
            distinct: false,
        };
        let e = Expr::cmp(
            CmpOp::Gt,
            Expr::Arith(
                ArithOp::Div,
                Box::new(count()),
                Box::new(Expr::Arith(
                    ArithOp::Add,
                    Box::new(count()),
                    Box::new(Expr::lit(1)),
                )),
            ),
            Expr::lit(1),
        );
        assert_eq!(e.aggregates().len(), 2);
    }
}
