//! Rendering patterns back to GPML concrete syntax.
//!
//! The printer always emits the *full* edge forms when a spec is present and
//! the Figure 5 abbreviations when it is not, so `parse(print(ast)) == ast`
//! holds (verified by property tests in the parser crate).

use std::fmt;

use super::expr::Expr;
use super::label::LabelExpr;
use super::pattern::{
    Direction, EdgePattern, GraphPattern, NodePattern, PathPattern, PathPatternExpr,
};

fn spec(
    f: &mut fmt::Formatter<'_>,
    var: &Option<String>,
    label: &Option<LabelExpr>,
    predicate: &Option<Expr>,
) -> fmt::Result {
    if let Some(v) = var {
        write!(f, "{v}")?;
    }
    if let Some(l) = label {
        write!(f, ":{l}")?;
    }
    if let Some(p) = predicate {
        write!(f, " WHERE {p}")?;
    }
    Ok(())
}

impl fmt::Display for NodePattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        spec(f, &self.var, &self.label, &self.predicate)?;
        write!(f, ")")
    }
}

impl fmt::Display for EdgePattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let has_spec = self.var.is_some() || self.label.is_some() || self.predicate.is_some();
        if !has_spec {
            // Figure 5 abbreviations.
            let s = match self.direction {
                Direction::Left => "<-",
                Direction::Undirected => "~",
                Direction::Right => "->",
                Direction::LeftOrUndirected => "<~",
                Direction::UndirectedOrRight => "~>",
                Direction::LeftOrRight => "<->",
                Direction::Any => "-",
            };
            return write!(f, "{s}");
        }
        let (open, close) = match self.direction {
            Direction::Left => ("<-[", "]-"),
            Direction::Undirected => ("~[", "]~"),
            Direction::Right => ("-[", "]->"),
            Direction::LeftOrUndirected => ("<~[", "]~"),
            Direction::UndirectedOrRight => ("~[", "]~>"),
            Direction::LeftOrRight => ("<-[", "]->"),
            Direction::Any => ("-[", "]-"),
        };
        write!(f, "{open}")?;
        spec(f, &self.var, &self.label, &self.predicate)?;
        write!(f, "{close}")
    }
}

impl fmt::Display for PathPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PathPattern::Node(n) => write!(f, "{n}"),
            PathPattern::Edge(e) => write!(f, "{e}"),
            PathPattern::Concat(parts) => {
                for p in parts {
                    // A union nested in a concatenation needs brackets, or
                    // re-parsing would attach the whole tail to one branch.
                    match p {
                        PathPattern::Union(_) | PathPattern::Alternation(_) => write!(f, "[{p}]")?,
                        _ => write!(f, "{p}")?,
                    }
                }
                Ok(())
            }
            PathPattern::Paren {
                restrictor,
                inner,
                predicate,
            } => {
                write!(f, "[")?;
                if let Some(r) = restrictor {
                    write!(f, "{r} ")?;
                }
                write!(f, "{inner}")?;
                if let Some(p) = predicate {
                    write!(f, " WHERE {p}")?;
                }
                write!(f, "]")
            }
            PathPattern::Quantified { inner, quantifier } => {
                write!(f, "{inner}{quantifier}")
            }
            PathPattern::Questioned(inner) => write!(f, "{inner}?"),
            PathPattern::Union(branches) => {
                for (i, b) in branches.iter().enumerate() {
                    if i > 0 {
                        write!(f, " | ")?;
                    }
                    write!(f, "{b}")?;
                }
                Ok(())
            }
            PathPattern::Alternation(branches) => {
                for (i, b) in branches.iter().enumerate() {
                    if i > 0 {
                        write!(f, " |+| ")?;
                    }
                    write!(f, "{b}")?;
                }
                Ok(())
            }
        }
    }
}

impl fmt::Display for PathPatternExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(s) = &self.selector {
            write!(f, "{s} ")?;
        }
        if let Some(r) = &self.restrictor {
            write!(f, "{r} ")?;
        }
        if let Some(v) = &self.path_var {
            write!(f, "{v} = ")?;
        }
        write!(f, "{}", self.pattern)
    }
}

impl fmt::Display for GraphPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, p) in self.paths.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{p}")?;
        }
        if let Some(w) = &self.where_clause {
            write!(f, " WHERE {w}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::pattern::Quantifier;

    #[test]
    fn node_pattern_display() {
        assert_eq!(NodePattern::any().to_string(), "()");
        assert_eq!(NodePattern::var("x").to_string(), "(x)");
        let p = NodePattern::var("x")
            .with_label(LabelExpr::label("Account"))
            .with_predicate(Expr::prop("x", "isBlocked").eq(Expr::lit("no")));
        assert_eq!(p.to_string(), "(x:Account WHERE x.isBlocked='no')");
    }

    #[test]
    fn edge_abbreviations_match_figure5() {
        let abbrevs = [
            (Direction::Left, "<-"),
            (Direction::Undirected, "~"),
            (Direction::Right, "->"),
            (Direction::LeftOrUndirected, "<~"),
            (Direction::UndirectedOrRight, "~>"),
            (Direction::LeftOrRight, "<->"),
            (Direction::Any, "-"),
        ];
        for (d, s) in abbrevs {
            assert_eq!(EdgePattern::any(d).to_string(), s);
        }
    }

    #[test]
    fn edge_full_forms_match_figure5() {
        let e = |d| EdgePattern::any(d).with_var("e").to_string();
        assert_eq!(e(Direction::Left), "<-[e]-");
        assert_eq!(e(Direction::Undirected), "~[e]~");
        assert_eq!(e(Direction::Right), "-[e]->");
        assert_eq!(e(Direction::LeftOrUndirected), "<~[e]~");
        assert_eq!(e(Direction::UndirectedOrRight), "~[e]~>");
        assert_eq!(e(Direction::LeftOrRight), "<-[e]->");
        assert_eq!(e(Direction::Any), "-[e]-");
    }

    #[test]
    fn quantified_paren_path() {
        let inner = PathPattern::concat(vec![
            PathPattern::Node(NodePattern::any()),
            PathPattern::Edge(
                EdgePattern::any(Direction::Right)
                    .with_var("t")
                    .with_label(LabelExpr::label("Transfer")),
            ),
            PathPattern::Node(NodePattern::any()),
        ]);
        let q = inner.paren().quantified(Quantifier::range(2, Some(5)));
        assert_eq!(q.to_string(), "[()-[t:Transfer]->()]{2,5}");
    }
}
