//! Abstract syntax of GPML graph patterns (§4–§5 of the paper).

pub mod display;
pub mod expr;
pub mod label;
pub mod pattern;

pub use expr::{AggArg, AggFunc, ArithOp, CmpOp, Expr};
pub use label::LabelExpr;
pub use pattern::{
    Direction, EdgePattern, GraphPattern, NodePattern, PathPattern, PathPatternExpr, Quantifier,
    Restrictor, Selector,
};
