//! Label expressions (§4.1).
//!
//! Inside a node or edge pattern, the part after `:` is a *label
//! expression*: individual labels combined with conjunction `&`, disjunction
//! `|`, negation `!`, grouping parentheses, and the wildcard `%` that matches
//! any label. `(:!%)` therefore matches elements that have no labels at all.

use std::collections::BTreeSet;
use std::fmt;

/// A boolean combination of labels evaluated against an element's label set.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum LabelExpr {
    /// `%` — true iff the element has at least one label.
    Wildcard,
    /// A single label, true iff it is a member of `λ(element)`.
    Label(String),
    /// `!e`
    Not(Box<LabelExpr>),
    /// `e & e`
    And(Box<LabelExpr>, Box<LabelExpr>),
    /// `e | e`
    Or(Box<LabelExpr>, Box<LabelExpr>),
}

impl LabelExpr {
    /// A single-label expression.
    pub fn label(name: impl Into<String>) -> LabelExpr {
        LabelExpr::Label(name.into())
    }

    /// Negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> LabelExpr {
        LabelExpr::Not(Box::new(self))
    }

    /// Conjunction.
    pub fn and(self, other: LabelExpr) -> LabelExpr {
        LabelExpr::And(Box::new(self), Box::new(other))
    }

    /// Disjunction.
    pub fn or(self, other: LabelExpr) -> LabelExpr {
        LabelExpr::Or(Box::new(self), Box::new(other))
    }

    /// Evaluates the expression against an element's label set.
    pub fn matches(&self, labels: &BTreeSet<String>) -> bool {
        match self {
            LabelExpr::Wildcard => !labels.is_empty(),
            LabelExpr::Label(l) => labels.contains(l),
            LabelExpr::Not(e) => !e.matches(labels),
            LabelExpr::And(a, b) => a.matches(labels) && b.matches(labels),
            LabelExpr::Or(a, b) => a.matches(labels) || b.matches(labels),
        }
    }

    /// All label names mentioned by the expression (used by planners and
    /// the SQL/PGQ view mapper).
    pub fn mentioned_labels(&self) -> BTreeSet<&str> {
        let mut out = BTreeSet::new();
        self.collect_labels(&mut out);
        out
    }

    fn collect_labels<'a>(&'a self, out: &mut BTreeSet<&'a str>) {
        match self {
            LabelExpr::Wildcard => {}
            LabelExpr::Label(l) => {
                out.insert(l.as_str());
            }
            LabelExpr::Not(e) => e.collect_labels(out),
            LabelExpr::And(a, b) | LabelExpr::Or(a, b) => {
                a.collect_labels(out);
                b.collect_labels(out);
            }
        }
    }

    fn precedence(&self) -> u8 {
        match self {
            LabelExpr::Or(..) => 0,
            LabelExpr::And(..) => 1,
            LabelExpr::Not(..) => 2,
            LabelExpr::Wildcard | LabelExpr::Label(_) => 3,
        }
    }

    fn fmt_prec(&self, f: &mut fmt::Formatter<'_>, parent: u8) -> fmt::Result {
        let me = self.precedence();
        if me < parent {
            write!(f, "(")?;
        }
        match self {
            LabelExpr::Wildcard => write!(f, "%")?,
            LabelExpr::Label(l) => write!(f, "{l}")?,
            LabelExpr::Not(e) => {
                write!(f, "!")?;
                e.fmt_prec(f, 3)?;
            }
            LabelExpr::And(a, b) => {
                a.fmt_prec(f, 1)?;
                write!(f, "&")?;
                b.fmt_prec(f, 2)?;
            }
            LabelExpr::Or(a, b) => {
                a.fmt_prec(f, 0)?;
                write!(f, "|")?;
                b.fmt_prec(f, 1)?;
            }
        }
        if me < parent {
            write!(f, ")")?;
        }
        Ok(())
    }
}

impl fmt::Display for LabelExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_prec(f, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(labels: &[&str]) -> BTreeSet<String> {
        labels.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn single_label() {
        let e = LabelExpr::label("Account");
        assert!(e.matches(&set(&["Account"])));
        assert!(e.matches(&set(&["Account", "Blocked"])));
        assert!(!e.matches(&set(&["IP"])));
        assert!(!e.matches(&set(&[])));
    }

    #[test]
    fn disjunction_account_or_ip() {
        // MATCH (x:Account|IP) from §4.1.
        let e = LabelExpr::label("Account").or(LabelExpr::label("IP"));
        assert!(e.matches(&set(&["Account"])));
        assert!(e.matches(&set(&["IP"])));
        assert!(!e.matches(&set(&["Phone"])));
    }

    #[test]
    fn conjunction_city_and_country() {
        let e = LabelExpr::label("City").and(LabelExpr::label("Country"));
        assert!(e.matches(&set(&["City", "Country"])));
        assert!(!e.matches(&set(&["Country"])));
    }

    #[test]
    fn wildcard_and_unlabeled() {
        // (:!%) matches nodes with no labels (§4.1).
        let unlabeled = LabelExpr::Wildcard.not();
        assert!(unlabeled.matches(&set(&[])));
        assert!(!unlabeled.matches(&set(&["Account"])));
        assert!(LabelExpr::Wildcard.matches(&set(&["anything"])));
        assert!(!LabelExpr::Wildcard.matches(&set(&[])));
    }

    #[test]
    fn nested_negation() {
        let e = LabelExpr::label("A").or(LabelExpr::label("B")).not();
        assert!(e.matches(&set(&["C"])));
        assert!(!e.matches(&set(&["A", "C"])));
    }

    #[test]
    fn display_respects_precedence() {
        let e = LabelExpr::label("A")
            .or(LabelExpr::label("B"))
            .and(LabelExpr::label("C").not());
        assert_eq!(e.to_string(), "(A|B)&!C");
        let f = LabelExpr::label("A").or(LabelExpr::label("B").and(LabelExpr::label("C")));
        assert_eq!(f.to_string(), "A|B&C");
    }

    #[test]
    fn mentioned_labels_are_collected() {
        let e = LabelExpr::label("A")
            .or(LabelExpr::label("B"))
            .and(LabelExpr::label("A").not());
        let ls = e.mentioned_labels();
        assert_eq!(ls.into_iter().collect::<Vec<_>>(), vec!["A", "B"]);
    }
}
