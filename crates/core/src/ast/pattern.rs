//! Pattern AST: node patterns, edge patterns, path patterns, and graph
//! patterns (§4), plus the restrictors and selectors of §5.

use std::fmt;

use super::expr::Expr;
use super::label::LabelExpr;
use property_graph::Traversal;

/// Edge orientation restrictions — the seven rows of Figure 5.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Direction {
    /// `<-[spec]-` / `<-`
    Left,
    /// `~[spec]~` / `~`
    Undirected,
    /// `-[spec]->` / `->`
    Right,
    /// `<~[spec]~` / `<~`
    LeftOrUndirected,
    /// `~[spec]~>` / `~>`
    UndirectedOrRight,
    /// `<-[spec]->` / `<->`
    LeftOrRight,
    /// `-[spec]-` / `-`
    Any,
}

impl Direction {
    /// Whether a concrete traversal of an edge satisfies this orientation.
    ///
    /// `Traversal::Forward` means the walk follows a directed edge from its
    /// source (the pattern's *right*-pointing case when read left to right);
    /// `Backward` is the left-pointing case.
    pub fn permits(self, t: Traversal) -> bool {
        match self {
            Direction::Left => t == Traversal::Backward,
            Direction::Undirected => t == Traversal::Undirected,
            Direction::Right => t == Traversal::Forward,
            Direction::LeftOrUndirected => {
                matches!(t, Traversal::Backward | Traversal::Undirected)
            }
            Direction::UndirectedOrRight => {
                matches!(t, Traversal::Undirected | Traversal::Forward)
            }
            Direction::LeftOrRight => matches!(t, Traversal::Backward | Traversal::Forward),
            Direction::Any => true,
        }
    }

    /// The orientation with left and right swapped — used when a pattern is
    /// traversed in reverse.
    pub fn reversed(self) -> Direction {
        match self {
            Direction::Left => Direction::Right,
            Direction::Right => Direction::Left,
            Direction::LeftOrUndirected => Direction::UndirectedOrRight,
            Direction::UndirectedOrRight => Direction::LeftOrUndirected,
            d => d,
        }
    }

    /// All seven orientations, in Figure 5 order.
    pub const ALL: [Direction; 7] = [
        Direction::Left,
        Direction::Undirected,
        Direction::Right,
        Direction::LeftOrUndirected,
        Direction::UndirectedOrRight,
        Direction::LeftOrRight,
        Direction::Any,
    ];
}

/// A node pattern `( var : labelExpr WHERE cond )`; each part is optional,
/// so `()` is the simplest node pattern (§4.1).
#[derive(Clone, Debug, PartialEq, Eq, Hash, Default)]
pub struct NodePattern {
    /// The variable the node binds to, if named.
    pub var: Option<String>,
    /// The label expression the node must satisfy.
    pub label: Option<LabelExpr>,
    /// The `WHERE` prefilter inside the parentheses.
    pub predicate: Option<Expr>,
}

/// An edge pattern with an orientation from Figure 5 and an optional
/// `var : labelExpr WHERE cond` spec.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct EdgePattern {
    /// The variable the edge binds to, if named.
    pub var: Option<String>,
    /// The label expression the edge must satisfy.
    pub label: Option<LabelExpr>,
    /// The `WHERE` prefilter inside the brackets.
    pub predicate: Option<Expr>,
    /// The Figure 5 orientation.
    pub direction: Direction,
}

impl NodePattern {
    /// `()`.
    pub fn any() -> NodePattern {
        NodePattern::default()
    }

    /// `(var)`.
    pub fn var(name: impl Into<String>) -> NodePattern {
        NodePattern {
            var: Some(name.into()),
            ..Default::default()
        }
    }

    /// Adds a label expression.
    pub fn with_label(mut self, l: LabelExpr) -> NodePattern {
        self.label = Some(l);
        self
    }

    /// Adds a `WHERE` prefilter.
    pub fn with_predicate(mut self, e: Expr) -> NodePattern {
        self.predicate = Some(e);
        self
    }

    /// True when the pattern has no variable, label, or predicate.
    pub fn is_trivial(&self) -> bool {
        self.var.is_none() && self.label.is_none() && self.predicate.is_none()
    }
}

impl EdgePattern {
    /// An unconstrained edge pattern in the given orientation.
    pub fn any(direction: Direction) -> EdgePattern {
        EdgePattern {
            var: None,
            label: None,
            predicate: None,
            direction,
        }
    }

    /// Sets the variable.
    pub fn with_var(mut self, name: impl Into<String>) -> EdgePattern {
        self.var = Some(name.into());
        self
    }

    /// Adds a label expression.
    pub fn with_label(mut self, l: LabelExpr) -> EdgePattern {
        self.label = Some(l);
        self
    }

    /// Adds a `WHERE` prefilter.
    pub fn with_predicate(mut self, e: Expr) -> EdgePattern {
        self.predicate = Some(e);
        self
    }
}

/// A repetition quantifier (Figure 6). `{m,}` has `max = None`; `*` is
/// `{0,}` and `+` is `{1,}` after normalization.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Quantifier {
    /// Minimum iterations.
    pub min: u32,
    /// Maximum iterations; `None` means unbounded.
    pub max: Option<u32>,
}

impl Quantifier {
    /// `{m,n}` / `{m,}`.
    pub fn range(min: u32, max: Option<u32>) -> Quantifier {
        Quantifier { min, max }
    }

    /// `*` ≡ `{0,}`.
    pub fn star() -> Quantifier {
        Quantifier { min: 0, max: None }
    }

    /// `+` ≡ `{1,}`.
    pub fn plus() -> Quantifier {
        Quantifier { min: 1, max: None }
    }

    /// True when the upper bound is unbounded — the §5 finiteness machinery
    /// applies to exactly these quantifiers.
    pub fn is_unbounded(&self) -> bool {
        self.max.is_none()
    }
}

/// Restrictors (Figure 7): path predicates under which only finitely many
/// paths exist in any graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Restrictor {
    /// No repeated edges.
    Trail,
    /// No repeated nodes.
    Acyclic,
    /// No repeated nodes, except the first and last may coincide.
    Simple,
}

/// Selectors (Figure 8): per-endpoint-partition selection of finitely many
/// paths, applied after restrictors.
///
/// The `CHEAPEST` variants implement the §7.1 language opportunity
/// ("cheapest path search, by adding weights to edges"): the cost of a
/// path is the sum of a numeric edge property over its edges (edges
/// lacking the property cost 1).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Selector {
    /// `ANY SHORTEST` — one shortest path per partition (non-deterministic).
    AnyShortest,
    /// `ALL SHORTEST` — every minimal-length path per partition
    /// (deterministic).
    AllShortest,
    /// `ANY` — one arbitrary path per partition.
    Any,
    /// `ANY k` — k arbitrary paths per partition.
    AnyK(u32),
    /// `SHORTEST k` — the k shortest paths per partition.
    ShortestK(u32),
    /// `SHORTEST k GROUP` — all paths in the first k length groups per
    /// partition (deterministic).
    ShortestKGroup(u32),
    /// `ANY CHEAPEST(prop)` — one minimum-cost path per partition (§7.1
    /// language opportunity; non-deterministic under cost ties).
    AnyCheapest {
        /// The numeric edge property summed as the path cost.
        weight: String,
    },
    /// `CHEAPEST k (prop)` — the k cheapest paths per partition.
    CheapestK {
        /// How many paths to keep per partition.
        k: u32,
        /// The numeric edge property summed as the path cost.
        weight: String,
    },
}

impl Selector {
    /// Whether the paper classifies the selector as deterministic (Fig. 8).
    pub fn is_deterministic(&self) -> bool {
        matches!(self, Selector::AllShortest | Selector::ShortestKGroup(_))
    }

    /// Whether the selector alone guarantees termination for unbounded
    /// quantifiers (§5). Length-based selectors do; cost-based ones do
    /// not (arbitrarily long paths can be arbitrarily cheap), so they
    /// additionally require a restrictor or bounded quantifiers.
    pub fn covers_termination(&self) -> bool {
        !matches!(
            self,
            Selector::AnyCheapest { .. } | Selector::CheapestK { .. }
        )
    }
}

/// A path pattern (§4.2–§4.6).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum PathPattern {
    /// A node pattern `(x:Label WHERE ...)`.
    Node(NodePattern),
    /// An edge pattern `-[e:Label WHERE ...]->` in any orientation.
    Edge(EdgePattern),
    /// Concatenation of factors, e.g. `(x)-[e]->(y)`.
    Concat(Vec<PathPattern>),
    /// A parenthesized path pattern `[ RESTRICTOR? inner WHERE cond? ]`,
    /// possibly quantified from outside.
    Paren {
        /// The restrictor scoped to this parenthesized subpattern.
        restrictor: Option<Restrictor>,
        /// The enclosed pattern.
        inner: Box<PathPattern>,
        /// The per-iteration `WHERE` prefilter.
        predicate: Option<Expr>,
    },
    /// `inner { m, n }` — inner is an edge pattern or parenthesized path
    /// pattern; all variables inside are exposed as group variables.
    Quantified {
        /// The repeated body.
        inner: Box<PathPattern>,
        /// The repetition bounds.
        quantifier: Quantifier,
    },
    /// `inner ?` — like `{0,1}` but singletons inside stay *conditional
    /// singletons* rather than groups (§4.6).
    Questioned(Box<PathPattern>),
    /// Path pattern union `a | b` — set semantics (§4.5).
    Union(Vec<PathPattern>),
    /// Multiset alternation `a |+| b` — multiset semantics (§4.5).
    Alternation(Vec<PathPattern>),
}

impl PathPattern {
    /// Concatenates factors, flattening nested concatenations.
    pub fn concat(parts: Vec<PathPattern>) -> PathPattern {
        let mut flat = Vec::with_capacity(parts.len());
        for p in parts {
            match p {
                PathPattern::Concat(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        if flat.len() == 1 {
            flat.pop().unwrap()
        } else {
            PathPattern::Concat(flat)
        }
    }

    /// Wraps in a quantifier.
    pub fn quantified(self, q: Quantifier) -> PathPattern {
        PathPattern::Quantified {
            inner: Box::new(self),
            quantifier: q,
        }
    }

    /// Wraps in brackets.
    pub fn paren(self) -> PathPattern {
        PathPattern::Paren {
            restrictor: None,
            inner: Box::new(self),
            predicate: None,
        }
    }
}

/// One comma-separated operand of `MATCH`: an optional selector, optional
/// restrictor, optional path variable, and the pattern body.
///
/// `MATCH ALL SHORTEST TRAIL p = (a)-[t:Transfer]->*(b)` has all four.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct PathPatternExpr {
    /// The Figure 8 selector, if any.
    pub selector: Option<Selector>,
    /// The Figure 7 restrictor, if any.
    pub restrictor: Option<Restrictor>,
    /// The `p = ...` path variable, if declared.
    pub path_var: Option<String>,
    /// The pattern body.
    pub pattern: PathPattern,
}

impl PathPatternExpr {
    /// A bare pattern with no selector, restrictor, or path variable.
    pub fn plain(pattern: PathPattern) -> PathPatternExpr {
        PathPatternExpr {
            selector: None,
            restrictor: None,
            path_var: None,
            pattern,
        }
    }
}

/// A full graph pattern: the comma-separated list of path patterns after
/// `MATCH`, plus the optional final `WHERE` postfilter (§4.3, §6.6).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct GraphPattern {
    /// The comma-separated path patterns.
    pub paths: Vec<PathPatternExpr>,
    /// The final `WHERE` postfilter, if any.
    pub where_clause: Option<Expr>,
}

impl GraphPattern {
    /// A single-path graph pattern without a postfilter.
    pub fn single(pattern: PathPattern) -> GraphPattern {
        GraphPattern {
            paths: vec![PathPatternExpr::plain(pattern)],
            where_clause: None,
        }
    }
}

impl fmt::Display for Restrictor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Restrictor::Trail => "TRAIL",
            Restrictor::Acyclic => "ACYCLIC",
            Restrictor::Simple => "SIMPLE",
        };
        write!(f, "{s}")
    }
}

impl fmt::Display for Selector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Selector::AnyShortest => write!(f, "ANY SHORTEST"),
            Selector::AllShortest => write!(f, "ALL SHORTEST"),
            Selector::Any => write!(f, "ANY"),
            Selector::AnyK(k) => write!(f, "ANY {k}"),
            Selector::ShortestK(k) => write!(f, "SHORTEST {k}"),
            Selector::ShortestKGroup(k) => write!(f, "SHORTEST {k} GROUP"),
            Selector::AnyCheapest { weight } => write!(f, "ANY CHEAPEST({weight})"),
            Selector::CheapestK { k, weight } => write!(f, "CHEAPEST {k} ({weight})"),
        }
    }
}

impl fmt::Display for Quantifier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.min, self.max) {
            (0, None) => write!(f, "*"),
            (1, None) => write!(f, "+"),
            (m, None) => write!(f, "{{{m},}}"),
            (m, Some(n)) => write!(f, "{{{m},{n}}}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direction_permits_matches_figure5() {
        use Traversal::*;
        // Row by row: (orientation, forward, backward, undirected).
        let rows = [
            (Direction::Left, false, true, false),
            (Direction::Undirected, false, false, true),
            (Direction::Right, true, false, false),
            (Direction::LeftOrUndirected, false, true, true),
            (Direction::UndirectedOrRight, true, false, true),
            (Direction::LeftOrRight, true, true, false),
            (Direction::Any, true, true, true),
        ];
        for (d, fw, bw, un) in rows {
            assert_eq!(d.permits(Forward), fw, "{d:?} forward");
            assert_eq!(d.permits(Backward), bw, "{d:?} backward");
            assert_eq!(d.permits(Undirected), un, "{d:?} undirected");
        }
    }

    #[test]
    fn direction_reversal_is_involutive() {
        for d in Direction::ALL {
            assert_eq!(d.reversed().reversed(), d);
        }
        assert_eq!(Direction::Left.reversed(), Direction::Right);
        assert_eq!(
            Direction::LeftOrUndirected.reversed(),
            Direction::UndirectedOrRight
        );
        assert_eq!(Direction::Any.reversed(), Direction::Any);
    }

    #[test]
    fn quantifier_sugar() {
        assert_eq!(Quantifier::star(), Quantifier::range(0, None));
        assert_eq!(Quantifier::plus(), Quantifier::range(1, None));
        assert!(Quantifier::plus().is_unbounded());
        assert!(!Quantifier::range(2, Some(5)).is_unbounded());
        assert_eq!(Quantifier::star().to_string(), "*");
        assert_eq!(Quantifier::plus().to_string(), "+");
        assert_eq!(Quantifier::range(2, Some(5)).to_string(), "{2,5}");
        assert_eq!(Quantifier::range(3, None).to_string(), "{3,}");
    }

    #[test]
    fn selector_determinism_matches_figure8() {
        assert!(Selector::AllShortest.is_deterministic());
        assert!(Selector::ShortestKGroup(2).is_deterministic());
        assert!(!Selector::AnyShortest.is_deterministic());
        assert!(!Selector::Any.is_deterministic());
        assert!(!Selector::AnyK(3).is_deterministic());
        assert!(!Selector::ShortestK(3).is_deterministic());
    }

    #[test]
    fn concat_flattens() {
        let n = || PathPattern::Node(NodePattern::any());
        let c = PathPattern::concat(vec![PathPattern::concat(vec![n(), n()]), n()]);
        match c {
            PathPattern::Concat(parts) => assert_eq!(parts.len(), 3),
            other => panic!("expected concat, got {other:?}"),
        }
        // A single part collapses to itself.
        assert_eq!(PathPattern::concat(vec![n()]), n());
    }

    #[test]
    fn node_pattern_builders() {
        let p = NodePattern::var("x")
            .with_label(LabelExpr::label("Account"))
            .with_predicate(Expr::prop("x", "isBlocked").eq(Expr::lit("no")));
        assert_eq!(p.var.as_deref(), Some("x"));
        assert!(!p.is_trivial());
        assert!(NodePattern::any().is_trivial());
    }
}
