//! The production pattern matcher.
//!
//! A normalized path pattern is compiled into a small NFA whose ε-moves
//! carry *actions* (test a node pattern, open/close a parenthesized scope,
//! enter/exit a quantifier iteration, record an alternation branch) and
//! whose consuming moves traverse one graph edge under an edge pattern.
//! Matching walks the product of the graph and this NFA:
//!
//! * **Restrictors prune during search** (§5.1): each active `TRAIL` /
//!   `ACYCLIC` / `SIMPLE` scope carries the boundary of its sub-walk and
//!   rejects extensions that would repeat an edge or node.
//! * **Selectors drive the search for unbounded quantifiers**: when an
//!   unbounded quantifier is covered only by a selector, the engine runs a
//!   levelized breadth-first search with *dominance pruning* — a state
//!   whose key (NFA state, current node, capped loop counters, singleton
//!   bindings) has already been reached at `k` strictly shorter lengths is
//!   discarded, where `k` is the number of length groups the selector can
//!   keep. Group-variable accumulations are deliberately excluded from the
//!   key: they never affect future matchability, only outputs, and longer
//!   arrivals are exactly the outputs the selector throws away.
//!
//! The matcher returns raw [`PathBinding`]s; reduction, deduplication, and
//! selector application happen in [`super`].

use std::cell::Cell;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};

use property_graph::{NodeId, Path, PropertyGraph, Step};

use crate::ast::{EdgePattern, Expr, NodePattern, PathPattern, Quantifier, Restrictor};
use crate::binding::{BoundValue, PathBinding};
use crate::error::{Error, Result};
use crate::eval::filter;
use crate::eval::{EvalOptions, StageCounters};
use crate::normalize::is_anonymous;
use crate::params::Params;

/// Semi-join endpoint filters (sideways information passing): for each
/// unconditional singleton node variable, the set of nodes the
/// accumulated join rows still admit. A search state whose `NodeTest`
/// binds a filtered variable to a node outside its set can never join
/// and is cut immediately.
pub(crate) type SemiJoinFilters = BTreeMap<String, BTreeSet<NodeId>>;

// ---------------------------------------------------------------------------
// NFA representation
// ---------------------------------------------------------------------------

/// ε-transition actions.
#[derive(Clone, Debug)]
pub(crate) enum Action {
    /// Plain ε.
    None,
    /// Test the current node against a node pattern; bind its variable.
    NodeTest(usize),
    /// Begin a parenthesized scope (restrictor bookkeeping).
    OpenParen(usize),
    /// End a parenthesized scope; evaluate its `WHERE` prefilter.
    CloseParen(usize),
    /// Enter a quantifier (push a loop counter).
    EnterQuant(usize),
    /// Begin one iteration (push a variable frame). Guarded by `count < max`.
    IterStart(usize),
    /// End one iteration (merge the frame into groups, bump the counter).
    IterEnd(usize),
    /// Leave the quantifier. Guarded by `count >= min`.
    ExitQuant(usize),
    /// Record which `|+|` branch was taken (multiset provenance, §4.5).
    AltMark(u32),
}

#[derive(Clone, Debug)]
pub(crate) struct EpsTrans {
    pub(crate) to: usize,
    pub(crate) action: Action,
}

#[derive(Clone, Debug, Default)]
pub(crate) struct StateData {
    pub(crate) eps: Vec<EpsTrans>,
    /// Consuming transitions: `(target state, edge-pattern index)`.
    pub(crate) edges: Vec<(usize, usize)>,
}

#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) struct QuantMeta {
    pub(crate) min: u32,
    pub(crate) max: Option<u32>,
    /// True for `?`: variables inside are exposed as conditional
    /// singletons instead of group variables (§4.6).
    pub(crate) expose_conditional: bool,
    /// All named variables declared in the body (with their kinds), used
    /// to bind empty groups when the quantifier iterates zero times.
    pub(crate) body_vars: Vec<(String, bool /*is_edge*/)>,
}

#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) struct ParenMeta {
    pub(crate) restrictor: Option<Restrictor>,
    pub(crate) predicate: Option<Expr>,
}

/// A compiled path pattern.
#[derive(Clone, Debug)]
pub(crate) struct Nfa {
    pub(crate) states: Vec<StateData>,
    pub(crate) start: usize,
    pub(crate) accept: usize,
    pub(crate) node_pats: Vec<NodePattern>,
    pub(crate) edge_pats: Vec<EdgePattern>,
    pub(crate) quants: Vec<QuantMeta>,
    pub(crate) parens: Vec<ParenMeta>,
    /// True when some unbounded quantifier is not inside any restrictor
    /// scope — the case that needs selector-driven dominance pruning.
    pub(crate) has_unrestricted_unbounded: bool,
}

struct Compiler {
    nfa: Nfa,
}

impl Compiler {
    fn new() -> Compiler {
        Compiler {
            nfa: Nfa {
                states: Vec::new(),
                start: 0,
                accept: 0,
                node_pats: Vec::new(),
                edge_pats: Vec::new(),
                quants: Vec::new(),
                parens: Vec::new(),
                has_unrestricted_unbounded: false,
            },
        }
    }

    fn state(&mut self) -> usize {
        self.nfa.states.push(StateData::default());
        self.nfa.states.len() - 1
    }

    fn eps(&mut self, from: usize, to: usize, action: Action) {
        self.nfa.states[from].eps.push(EpsTrans { to, action });
    }

    /// Compiles `p`, returning the fragment's `(entry, exit)` states.
    /// `restricted` is true while a restrictor scope encloses the fragment.
    fn compile(&mut self, p: &PathPattern, restricted: bool) -> (usize, usize) {
        match p {
            PathPattern::Node(n) => {
                let s = self.state();
                let e = self.state();
                self.nfa.node_pats.push(n.clone());
                let idx = self.nfa.node_pats.len() - 1;
                self.eps(s, e, Action::NodeTest(idx));
                (s, e)
            }
            PathPattern::Edge(ep) => {
                let s = self.state();
                let e = self.state();
                self.nfa.edge_pats.push(ep.clone());
                let idx = self.nfa.edge_pats.len() - 1;
                self.nfa.states[s].edges.push((e, idx));
                (s, e)
            }
            PathPattern::Concat(parts) => {
                let s = self.state();
                let mut cur = s;
                for part in parts {
                    let (ps, pe) = self.compile(part, restricted);
                    self.eps(cur, ps, Action::None);
                    cur = pe;
                }
                (s, cur)
            }
            PathPattern::Paren {
                restrictor,
                inner,
                predicate,
            } => {
                self.nfa.parens.push(ParenMeta {
                    restrictor: *restrictor,
                    predicate: predicate.clone(),
                });
                let id = self.nfa.parens.len() - 1;
                let inner_restricted = restricted || restrictor.is_some();
                let (is, ie) = self.compile(inner, inner_restricted);
                let s = self.state();
                let e = self.state();
                self.eps(s, is, Action::OpenParen(id));
                self.eps(ie, e, Action::CloseParen(id));
                (s, e)
            }
            PathPattern::Quantified { inner, quantifier } => {
                self.compile_loop(inner, *quantifier, false, restricted)
            }
            PathPattern::Questioned(inner) => {
                self.compile_loop(inner, Quantifier::range(0, Some(1)), true, restricted)
            }
            PathPattern::Union(branches) => {
                let s = self.state();
                let e = self.state();
                for b in branches {
                    let (bs, be) = self.compile(b, restricted);
                    self.eps(s, bs, Action::None);
                    self.eps(be, e, Action::None);
                }
                (s, e)
            }
            PathPattern::Alternation(branches) => {
                let s = self.state();
                let e = self.state();
                for (i, b) in branches.iter().enumerate() {
                    let (bs, be) = self.compile(b, restricted);
                    self.eps(s, bs, Action::AltMark(i as u32));
                    self.eps(be, e, Action::None);
                }
                (s, e)
            }
        }
    }

    fn compile_loop(
        &mut self,
        body: &PathPattern,
        q: Quantifier,
        expose_conditional: bool,
        restricted: bool,
    ) -> (usize, usize) {
        let mut body_vars = Vec::new();
        collect_vars(body, &mut body_vars);
        self.nfa.quants.push(QuantMeta {
            min: q.min,
            max: q.max,
            expose_conditional,
            body_vars,
        });
        let id = self.nfa.quants.len() - 1;
        if q.is_unbounded() && !restricted {
            self.nfa.has_unrestricted_unbounded = true;
        }

        let s = self.state();
        let head = self.state();
        let e = self.state();
        self.eps(s, head, Action::EnterQuant(id));
        let (bs, be) = self.compile(body, restricted);
        self.eps(head, bs, Action::IterStart(id));
        self.eps(be, head, Action::IterEnd(id));
        self.eps(head, e, Action::ExitQuant(id));
        (s, e)
    }
}

/// Collects all named (non-anonymous) variables in a pattern subtree.
pub(crate) fn collect_vars(p: &PathPattern, out: &mut Vec<(String, bool)>) {
    match p {
        PathPattern::Node(n) => {
            if let Some(v) = &n.var {
                if !is_anonymous(v) && !out.iter().any(|(n2, _)| n2 == v) {
                    out.push((v.clone(), false));
                }
            }
        }
        PathPattern::Edge(e) => {
            if let Some(v) = &e.var {
                if !is_anonymous(v) && !out.iter().any(|(n2, _)| n2 == v) {
                    out.push((v.clone(), true));
                }
            }
        }
        PathPattern::Concat(parts) => parts.iter().for_each(|x| collect_vars(x, out)),
        PathPattern::Paren { inner, .. } => collect_vars(inner, out),
        PathPattern::Quantified { inner, .. } => collect_vars(inner, out),
        PathPattern::Questioned(inner) => collect_vars(inner, out),
        PathPattern::Union(bs) | PathPattern::Alternation(bs) => {
            bs.iter().for_each(|x| collect_vars(x, out))
        }
    }
}

/// Compiles a normalized path pattern.
pub(crate) fn compile(pattern: &PathPattern) -> Nfa {
    let mut c = Compiler::new();
    let (s, e) = c.compile(pattern, false);
    c.nfa.start = s;
    c.nfa.accept = e;
    c.nfa
}

// ---------------------------------------------------------------------------
// Runtime state
// ---------------------------------------------------------------------------

/// One iteration's variable frame.
#[derive(Clone, Debug)]
pub(crate) struct Frame {
    pub(crate) qid: usize,
    pub(crate) locals: BTreeMap<String, BoundValue>,
    pub(crate) edges_at_start: usize,
}

/// A live restrictor scope over a suffix of the walk.
#[derive(Clone, Debug)]
pub(crate) struct Scope {
    pub(crate) paren: usize,
    pub(crate) restrictor: Restrictor,
    pub(crate) node_start: usize,
    pub(crate) edge_start: usize,
    /// SIMPLE scope that has returned to its start node: no further steps.
    pub(crate) closed: bool,
}

/// Loop bookkeeping for one active quantifier.
#[derive(Clone, Debug)]
pub(crate) struct Loop {
    pub(crate) qid: usize,
    pub(crate) count: u32,
    /// The previous iteration consumed no edges; further iterations cannot
    /// make progress (bodies are homogeneous), so only run them while the
    /// minimum has not been met.
    pub(crate) stalled: bool,
}

#[derive(Clone, Debug)]
pub(crate) struct RunState {
    pub(crate) at: usize,
    pub(crate) path: Path,
    pub(crate) globals: BTreeMap<String, BoundValue>,
    pub(crate) frames: Vec<Frame>,
    pub(crate) scopes: Vec<Scope>,
    pub(crate) loops: Vec<Loop>,
    pub(crate) alt_marks: Vec<u32>,
    /// Prefilters whose variables were not yet bound when encountered;
    /// re-checked when the match completes.
    pub(crate) deferred: Vec<Expr>,
    /// Completed restrictor scopes as `(restrictor, first node index,
    /// last node index)` — only recorded under the deferred-restrictor
    /// ablation, where they are validated at match completion instead of
    /// pruning the search.
    pub(crate) spans: Vec<(Restrictor, usize, usize)>,
}

/// Where [`RunState::bind_where`] landed a successful binding — the flat
/// engine records this on its undo trail to reverse the bind exactly.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum BindSite {
    /// Joined against an existing binding; nothing was inserted.
    Existing,
    /// Inserted fresh into the global map.
    Globals,
    /// Inserted fresh into the innermost frame's locals.
    Frame,
}

impl RunState {
    pub(crate) fn current(&self) -> NodeId {
        self.path.end()
    }

    /// The innermost visible binding of `var`.
    pub(crate) fn lookup(&self, var: &str) -> Option<&BoundValue> {
        for f in self.frames.iter().rev() {
            if let Some(v) = f.locals.get(var) {
                return Some(v);
            }
        }
        self.globals.get(var)
    }

    /// Binds `var` to `value`, enforcing the implicit equi-join when the
    /// variable is already visible. Returns false if the join fails.
    ///
    /// A *group accumulation* visible outside the innermost frame is not a
    /// join partner: each quantifier iteration binds the variable afresh
    /// and the accumulation only collects the per-iteration values.
    fn bind(&mut self, var: &str, value: BoundValue) -> bool {
        self.bind_where(var, value).is_some()
    }

    /// [`RunState::bind`] that additionally reports *where* a successful
    /// bind landed, so callers that must undo the mutation (the flat
    /// interpreter's trail) can reverse exactly what happened. `None`
    /// means the implicit equi-join rejected the binding; rejection never
    /// mutates the state.
    pub(crate) fn bind_where(&mut self, var: &str, value: BoundValue) -> Option<BindSite> {
        if is_anonymous(var) {
            return Some(BindSite::Existing);
        }
        let innermost = self.frames.len().wrapping_sub(1);
        for (i, f) in self.frames.iter().enumerate().rev() {
            if let Some(existing) = f.locals.get(var) {
                if existing.is_singleton() || matches!(existing, BoundValue::Path(_)) {
                    return (*existing == value).then_some(BindSite::Existing);
                }
                // A group in the innermost frame means the variable was
                // already consumed by an inner quantifier this iteration —
                // re-binding it is a (rejected) cross-scope join.
                if i == innermost {
                    return None;
                }
                break; // outer accumulation: shadow with a fresh local
            }
        }
        if self.frames.is_empty() {
            if let Some(existing) = self.globals.get(var) {
                return (*existing == value).then_some(BindSite::Existing);
            }
        } else if let Some(existing) = self.globals.get(var) {
            if existing.is_singleton() {
                // An outer singleton joins with inner references... but a
                // singleton visible from inside a quantifier is the
                // group/singleton conflict analysis rejects; treat as join.
                return (*existing == value).then_some(BindSite::Existing);
            }
            // Outer group accumulation: shadow below.
        }
        let (target, site) = match self.frames.last_mut() {
            Some(f) => (&mut f.locals, BindSite::Frame),
            None => (&mut self.globals, BindSite::Globals),
        };
        target.insert(var.to_owned(), value);
        Some(site)
    }

    /// A stable fingerprint of everything except group accumulations and
    /// the walk body — the dominance-pruning key (see module docs).
    ///
    /// Loop counters are capped: past `min` (for unbounded quantifiers) or
    /// `max` (for bounded ones) further iterations do not change what the
    /// state can still match, so capped counts keep the key space finite —
    /// which is exactly what makes selector-driven search terminate.
    fn prune_key(&self, quants: &[QuantMeta]) -> String {
        use std::fmt::Write;
        let mut s = String::with_capacity(64);
        let _ = write!(
            s,
            "{}@{:?}|{:?}",
            self.at,
            self.path.start(),
            self.current()
        );
        for l in &self.loops {
            let q = &quants[l.qid];
            let cap = q.max.unwrap_or(q.min);
            let _ = write!(s, ";L{}={}/{}", l.qid, l.count.min(cap), l.stalled as u8);
        }
        for (k, v) in &self.globals {
            if !matches!(v, BoundValue::NodeGroup(_) | BoundValue::EdgeGroup(_)) {
                let _ = write!(s, ";g{k}={v:?}");
            }
        }
        for f in &self.frames {
            let _ = write!(s, ";f{}", f.qid);
            for (k, v) in &f.locals {
                let _ = write!(s, ",{k}={v:?}");
            }
        }
        let _ = write!(s, "|a{:?}|d{}", self.alt_marks, self.deferred.len());
        s
    }
}

struct StateEnv<'a> {
    state: &'a RunState,
    params: &'a Params,
}

impl filter::Env for StateEnv<'_> {
    fn lookup(&self, var: &str) -> Option<BoundValue> {
        self.state.lookup(var).cloned()
    }

    fn param(&self, name: &str) -> Option<property_graph::Value> {
        self.params.get(name).cloned()
    }
}

// ---------------------------------------------------------------------------
// The matcher
// ---------------------------------------------------------------------------

/// How aggressively dominated states may be pruned.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum PruneMode {
    /// Keep everything (restrictors and bounds already make the search
    /// finite).
    Exhaustive,
    /// Keep states reachable within the first `k` distinct arrival
    /// lengths per key (selector-driven search).
    ShortestGroups(usize),
}

/// Decides — graph-independently, so it can run at prepare time — how the
/// search over `nfa` must prune, rejecting patterns whose unbounded
/// quantifiers are covered by neither a restrictor nor a selector (§5).
pub(crate) fn resolve_prune(
    nfa: &Nfa,
    path_restrictor: Option<Restrictor>,
    selector_groups: Option<usize>,
) -> Result<PruneMode> {
    if nfa.has_unrestricted_unbounded && path_restrictor.is_none() {
        match selector_groups {
            Some(k) => Ok(PruneMode::ShortestGroups(k)),
            None => Err(Error::UnboundedQuantifier {
                quantifier: "*".to_owned(),
            }),
        }
    } else {
        Ok(PruneMode::Exhaustive)
    }
}

pub(crate) struct Matcher<'a> {
    graph: &'a PropertyGraph,
    nfa: &'a Nfa,
    opts: &'a EvalOptions,
    /// Parameter bindings for `$name` placeholders in prefilters.
    params: &'a Params,
    path_restrictor: Option<Restrictor>,
    prune: PruneMode,
    max_edges: usize,
    /// Ablation: restrictors validated at completion instead of pruning
    /// in-search (see `EvalOptions::defer_restrictors`).
    defer: bool,
    /// Semi-join endpoint filters pushed down by the executor, if any.
    filters: Option<&'a SemiJoinFilters>,
    /// Search-effort tallies (`Cell`: `run_from` takes `&self`), flushed
    /// into a shared [`StageCounters`] via [`Matcher::flush_counters`].
    nodes_expanded: Cell<u64>,
    edges_traversed: Cell<u64>,
    rows_pruned: Cell<u64>,
}

impl<'a> Matcher<'a> {
    /// Builds a matcher over a pre-compiled NFA. `pattern` must be the
    /// (normalized) pattern `nfa` was compiled from; it is only consulted
    /// for the graph-dependent static edge bound.
    pub(crate) fn over(
        graph: &'a PropertyGraph,
        nfa: &'a Nfa,
        pattern: &PathPattern,
        path_restrictor: Option<Restrictor>,
        prune: PruneMode,
        opts: &'a EvalOptions,
        params: &'a Params,
    ) -> Matcher<'a> {
        let static_cap = static_edge_bound(pattern, graph, path_restrictor);
        let max_edges = static_cap.min(opts.max_path_length);
        let defer = opts.defer_restrictors;
        Matcher {
            graph,
            nfa,
            opts,
            params,
            path_restrictor,
            prune,
            max_edges,
            defer,
            filters: None,
            nodes_expanded: Cell::new(0),
            edges_traversed: Cell::new(0),
            rows_pruned: Cell::new(0),
        }
    }

    /// Installs semi-join endpoint filters for this search. Filtering only
    /// ever removes bindings the cross-stage join would reject, so — for
    /// the stages the executor deems eligible — results are unchanged.
    pub(crate) fn with_filters(mut self, filters: &'a SemiJoinFilters) -> Matcher<'a> {
        self.filters = Some(filters);
        self
    }

    /// Adds this matcher's search tallies into `counters` and resets them.
    pub(crate) fn flush_counters(&self, counters: &StageCounters) {
        counters.add(
            self.nodes_expanded.take(),
            self.edges_traversed.take(),
            self.rows_pruned.take(),
            0,
            0,
        );
    }

    /// Runs the search seeded only from `starts`.
    ///
    /// Searches from different start nodes are fully independent — the
    /// dominance-pruning key carries the start node, so no pruning
    /// decision ever crosses start nodes — which makes this the unit of
    /// work for parallel partitioned matching (see [`super::pool`]).
    /// Running disjoint partitions and concatenating their results yields
    /// exactly the raw matches of one full [`Matcher::run`], up to an
    /// order the per-stage reduce/dedup pass erases anyway. Resource
    /// limits are enforced per call, i.e. per partition.
    pub(crate) fn run_from(&self, starts: &[NodeId]) -> Result<Vec<PathBinding>> {
        let mut results: Vec<PathBinding> = Vec::new();
        let mut queue: VecDeque<RunState> = VecDeque::new();
        // Dominance bookkeeping: key → distinct arrival lengths seen.
        let mut seen: HashMap<String, BTreeSet<usize>> = HashMap::new();

        for &n in starts {
            let mut init = RunState {
                at: self.nfa.start,
                path: Path::single(n),
                globals: BTreeMap::new(),
                frames: Vec::new(),
                scopes: Vec::new(),
                loops: Vec::new(),
                alt_marks: Vec::new(),
                deferred: Vec::new(),
                spans: Vec::new(),
            };
            if let Some(r) = self.path_restrictor {
                init.scopes.push(Scope {
                    paren: usize::MAX,
                    restrictor: r,
                    node_start: 0,
                    edge_start: 0,
                    closed: false,
                });
            }
            self.advance_eps(init, &mut queue, &mut results, &mut seen)?;
        }

        while let Some(state) = queue.pop_front() {
            self.nodes_expanded.set(self.nodes_expanded.get() + 1);
            if state.path.len() >= self.max_edges {
                continue;
            }
            let consuming = self.nfa.states[state.at].edges.clone();
            for (target, ep_idx) in consuming {
                let ep = &self.nfa.edge_pats[ep_idx];
                let cur = state.current();
                for step in self.graph.steps(cur) {
                    self.edges_traversed.set(self.edges_traversed.get() + 1);
                    if let Some(next) = try_step(
                        self.graph,
                        self.params,
                        self.defer,
                        &state,
                        target,
                        ep,
                        *step,
                    ) {
                        self.advance_eps(next, &mut queue, &mut results, &mut seen)?;
                    }
                }
            }
            if results.len() > self.opts.max_matches {
                return Err(Error::LimitExceeded {
                    what: "matches",
                    limit: self.opts.max_matches,
                });
            }
        }
        Ok(results)
    }

    /// ε-closure with actions: explores all ε-reachable configurations,
    /// queueing those with consuming transitions and recording accepts.
    fn advance_eps(
        &self,
        from: RunState,
        queue: &mut VecDeque<RunState>,
        results: &mut Vec<PathBinding>,
        seen: &mut HashMap<String, BTreeSet<usize>>,
    ) -> Result<()> {
        let mut stack = vec![from];
        let mut visited: HashSet<String> = HashSet::new();
        while let Some(state) = stack.pop() {
            // ε-closure cycle protection must distinguish *complete*
            // configurations (including group accumulations), unlike the
            // dominance key.
            let vkey = format!(
                "{}#{:?}#{:?}#{:?}#{:?}#{:?}#{}#{}",
                state.at,
                state.loops,
                state.frames,
                state.globals,
                state.scopes.len(),
                state.alt_marks,
                state.deferred.len(),
                state.spans.len()
            );
            if !visited.insert(vkey) {
                continue;
            }
            if state.at == self.nfa.accept {
                if let Some(b) = finalize(self.graph, self.params, self.defer, &state) {
                    results.push(b);
                }
            }
            if !self.nfa.states[state.at].edges.is_empty() {
                self.enqueue(state.clone(), queue, seen)?;
            }
            let eps = self.nfa.states[state.at].eps.clone();
            for t in eps {
                if let Some(next) = self.apply_action(&state, &t) {
                    stack.push(next);
                }
            }
        }
        Ok(())
    }

    fn enqueue(
        &self,
        state: RunState,
        queue: &mut VecDeque<RunState>,
        seen: &mut HashMap<String, BTreeSet<usize>>,
    ) -> Result<()> {
        if let PruneMode::ShortestGroups(k) = self.prune {
            // Pruning is only sound for states without live restrictor
            // scopes (scope memory affects future matchability).
            if state.scopes.is_empty() {
                let key = state.prune_key(&self.nfa.quants);
                let lengths = seen.entry(key).or_default();
                let len = state.path.len();
                let shorter = lengths.range(..len).count();
                if shorter >= k {
                    return Ok(());
                }
                lengths.insert(len);
            }
        }
        if queue.len() >= self.opts.max_frontier {
            return Err(Error::LimitExceeded {
                what: "frontier states",
                limit: self.opts.max_frontier,
            });
        }
        queue.push_back(state);
        Ok(())
    }

    fn apply_action(&self, state: &RunState, t: &EpsTrans) -> Option<RunState> {
        let mut next = state.clone();
        next.at = t.to;
        match &t.action {
            Action::None => Some(next),
            Action::AltMark(i) => {
                next.alt_marks.push(*i);
                Some(next)
            }
            Action::NodeTest(idx) => {
                let np = &self.nfa.node_pats[*idx];
                let n = next.current();
                if let Some(l) = &np.label {
                    if !l.matches(&self.graph.node(n).labels) {
                        return None;
                    }
                }
                if let Some(v) = &np.var {
                    // The semi-join endpoint check: a node outside the
                    // accumulated key set can never survive the join.
                    if let Some(allowed) = self.filters.and_then(|f| f.get(v)) {
                        if !allowed.contains(&n) {
                            self.rows_pruned.set(self.rows_pruned.get() + 1);
                            return None;
                        }
                    }
                    if !next.bind(v, BoundValue::Node(n)) {
                        return None;
                    }
                }
                if let Some(pred) = &np.predicate {
                    if !check_prefilter(self.graph, self.params, &mut next, pred) {
                        return None;
                    }
                }
                Some(next)
            }
            Action::OpenParen(id) => {
                if let Some(r) = self.nfa.parens[*id].restrictor {
                    next.scopes.push(Scope {
                        paren: *id,
                        restrictor: r,
                        node_start: next.path.nodes().len() - 1,
                        edge_start: next.path.edges().len(),
                        closed: false,
                    });
                }
                Some(next)
            }
            Action::CloseParen(id) => {
                if let Some(pred) = &self.nfa.parens[*id].predicate {
                    if !check_prefilter(self.graph, self.params, &mut next, pred) {
                        return None;
                    }
                }
                if next.scopes.last().is_some_and(|s| s.paren == *id) {
                    let scope = next.scopes.pop().expect("just checked");
                    if self.defer {
                        next.spans.push((
                            scope.restrictor,
                            scope.node_start,
                            next.path.nodes().len() - 1,
                        ));
                    }
                }
                Some(next)
            }
            Action::EnterQuant(id) => {
                next.loops.push(Loop {
                    qid: *id,
                    count: 0,
                    stalled: false,
                });
                Some(next)
            }
            Action::IterStart(id) => {
                let q = &self.nfa.quants[*id];
                let l = next.loops.last()?;
                debug_assert_eq!(l.qid, *id);
                if let Some(max) = q.max {
                    if l.count >= max {
                        return None;
                    }
                }
                if l.stalled && l.count >= q.min {
                    return None;
                }
                next.frames.push(Frame {
                    qid: *id,
                    locals: BTreeMap::new(),
                    edges_at_start: next.path.len(),
                });
                Some(next)
            }
            Action::IterEnd(id) => {
                let q = &self.nfa.quants[*id];
                let frame = next.frames.pop()?;
                debug_assert_eq!(frame.qid, *id);
                let progressed = next.path.len() > frame.edges_at_start;
                // Merge iteration locals outward: group accumulation (or
                // conditional-singleton exposure for `?`).
                for (var, val) in frame.locals {
                    if !merge_binding(&mut next, &var, val, q.expose_conditional) {
                        return None;
                    }
                }
                let l = next.loops.last_mut()?;
                l.count += 1;
                if !progressed {
                    l.stalled = true;
                }
                Some(next)
            }
            Action::ExitQuant(id) => {
                let q = &self.nfa.quants[*id];
                let l = next.loops.pop()?;
                debug_assert_eq!(l.qid, *id);
                if l.count < q.min {
                    return None;
                }
                // Variables of bodies that iterated zero times bind to the
                // empty group (COUNT(e.*) = 0 in §5.3). `?` leaves its
                // conditional singletons unbound instead.
                if !q.expose_conditional {
                    for (var, is_edge) in &q.body_vars {
                        if next.lookup(var).is_none() {
                            let empty = if *is_edge {
                                BoundValue::EdgeGroup(Vec::new())
                            } else {
                                BoundValue::NodeGroup(Vec::new())
                            };
                            if !next.bind(var, empty) {
                                return None;
                            }
                        }
                    }
                }
                Some(next)
            }
        }
    }
}

/// Attempts one graph step under an edge pattern, returning the successor
/// state if direction, labels, restrictors, bindings, and prefilters all
/// admit it. Shared verbatim by the legacy [`Matcher`] and the flat
/// interpreter so both engines take identical step decisions.
pub(crate) fn try_step(
    graph: &PropertyGraph,
    params: &Params,
    defer: bool,
    state: &RunState,
    target: usize,
    ep: &EdgePattern,
    step: Step,
) -> Option<RunState> {
    if !ep.direction.permits(step.traversal) {
        return None;
    }
    let edata = graph.edge(step.edge);
    if let Some(l) = &ep.label {
        if !l.matches(&edata.labels) {
            return None;
        }
    }
    // Restrictor scopes prune during the search (§5.1) — unless the
    // deferred-restrictor ablation postpones the checks to finalize.
    if !defer {
        for scope in &state.scopes {
            if scope.closed {
                return None;
            }
            match scope.restrictor {
                Restrictor::Trail => {
                    if state.path.edges()[scope.edge_start..].contains(&step.edge) {
                        return None;
                    }
                }
                Restrictor::Acyclic => {
                    if state.path.nodes()[scope.node_start..].contains(&step.to) {
                        return None;
                    }
                }
                Restrictor::Simple => {
                    let nodes = &state.path.nodes()[scope.node_start..];
                    if nodes.contains(&step.to) && step.to != nodes[0] {
                        return None;
                    }
                }
            }
        }
    }

    let mut next = state.clone();
    next.at = target;
    next.path.push(step.edge, step.to);
    // Close SIMPLE scopes that returned to their start node.
    if !defer {
        for scope in &mut next.scopes {
            if scope.restrictor == Restrictor::Simple
                && step.to == state.path.nodes()[scope.node_start]
            {
                scope.closed = true;
            }
        }
    }
    if let Some(v) = &ep.var {
        if !next.bind(v, BoundValue::Edge(step.edge)) {
            return None;
        }
    }
    if let Some(pred) = &ep.predicate {
        if !check_prefilter(graph, params, &mut next, pred) {
            return None;
        }
    }
    Some(next)
}

/// Evaluates a prefilter, deferring it when it references variables that
/// are not bound yet.
pub(crate) fn check_prefilter(
    graph: &PropertyGraph,
    params: &Params,
    state: &mut RunState,
    pred: &Expr,
) -> bool {
    let mut unbound = false;
    pred.visit_vars(&mut |v, _| {
        if !is_anonymous(v) && state.lookup(v).is_none() {
            unbound = true;
        }
    });
    if unbound {
        state.deferred.push(pred.clone());
        return true;
    }
    let env = StateEnv { state, params };
    filter::truth(graph, &env, pred) == Some(true)
}

/// Turns an accepting state into a path binding, re-checking deferred
/// prefilters against the complete variable map (and, under the
/// deferred-restrictor ablation, the restrictor scopes).
pub(crate) fn finalize(
    graph: &PropertyGraph,
    params: &Params,
    defer: bool,
    state: &RunState,
) -> Option<PathBinding> {
    debug_assert!(state.frames.is_empty());
    if defer {
        let whole_end = state.path.nodes().len() - 1;
        let spans = state.spans.iter().copied().chain(
            state
                .scopes
                .iter()
                .map(|s| (s.restrictor, s.node_start, whole_end)),
        );
        for (r, s, e) in spans {
            let sub = Path::new(
                state.path.nodes()[s..=e].to_vec(),
                state.path.edges()[s..e].to_vec(),
            );
            let ok = match r {
                Restrictor::Trail => sub.is_trail(),
                Restrictor::Acyclic => sub.is_acyclic(),
                Restrictor::Simple => sub.is_simple(),
            };
            if !ok {
                return None;
            }
        }
    }
    for pred in &state.deferred {
        let env = StateEnv { state, params };
        if filter::truth(graph, &env, pred) != Some(true) {
            return None;
        }
    }
    Some(PathBinding {
        path: state.path.clone(),
        bindings: state.globals.clone(),
        alt_marks: state.alt_marks.clone(),
    })
}

/// What [`merge_binding_traced`] did to the merge target — reported even
/// when the merge *rejects*, because a rejected merge may already have
/// inserted a fresh (empty) group that the flat interpreter's trail must
/// still undo.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum MergeEffect {
    /// Target map untouched.
    None,
    /// A fresh entry for the variable was inserted.
    Inserted {
        /// Whether the target map was the globals (vs. a frame's locals).
        global: bool,
    },
    /// An existing group entry was extended from `old_len` elements.
    Extended {
        /// Whether the target map was the globals (vs. a frame's locals).
        global: bool,
        /// Group length before the merge.
        old_len: usize,
    },
}

/// Merges one iteration-local binding outward at `IterEnd`.
fn merge_binding(
    state: &mut RunState,
    var: &str,
    val: BoundValue,
    expose_conditional: bool,
) -> bool {
    merge_binding_traced(state, var, val, expose_conditional).1
}

/// [`merge_binding`] that also reports the mutation it performed, so the
/// flat interpreter can record an exact undo entry. Note the effect is
/// meaningful even when the merge returns `false`.
pub(crate) fn merge_binding_traced(
    state: &mut RunState,
    var: &str,
    val: BoundValue,
    expose_conditional: bool,
) -> (MergeEffect, bool) {
    let global = state.frames.is_empty();
    let target = match state.frames.last_mut() {
        Some(f) => &mut f.locals,
        None => &mut state.globals,
    };
    if expose_conditional {
        // `?` exposes singletons as conditional singletons (§4.6).
        return match target.get(var) {
            Some(existing) => (MergeEffect::None, *existing == val),
            None => {
                target.insert(var.to_owned(), val);
                (MergeEffect::Inserted { global }, true)
            }
        };
    }
    let inserted = !target.contains_key(var);
    let entry = target.entry(var.to_owned()).or_insert_with(|| match val {
        BoundValue::Node(_) | BoundValue::NodeGroup(_) => BoundValue::NodeGroup(Vec::new()),
        BoundValue::Edge(_) | BoundValue::EdgeGroup(_) => BoundValue::EdgeGroup(Vec::new()),
        BoundValue::Path(_) => BoundValue::NodeGroup(Vec::new()),
    });
    let old_len = match entry {
        BoundValue::NodeGroup(g) => g.len(),
        BoundValue::EdgeGroup(g) => g.len(),
        _ => 0,
    };
    let effect = if inserted {
        MergeEffect::Inserted { global }
    } else {
        MergeEffect::Extended { global, old_len }
    };
    let ok = match (entry, val) {
        (BoundValue::NodeGroup(g), BoundValue::Node(n)) => {
            g.push(n);
            true
        }
        (BoundValue::NodeGroup(g), BoundValue::NodeGroup(ns)) => {
            g.extend(ns);
            true
        }
        (BoundValue::EdgeGroup(g), BoundValue::Edge(e)) => {
            g.push(e);
            true
        }
        (BoundValue::EdgeGroup(g), BoundValue::EdgeGroup(es)) => {
            g.extend(es);
            true
        }
        _ => false,
    };
    (effect, ok)
}

/// A conservative static bound on the number of edges any match can use;
/// `usize::MAX / 4` stands for "unbounded" (then selector pruning bounds
/// the search instead).
pub(crate) fn static_edge_bound(
    pattern: &PathPattern,
    graph: &PropertyGraph,
    path_restrictor: Option<Restrictor>,
) -> usize {
    const INF: usize = usize::MAX / 4;
    fn walk(p: &PathPattern, graph: &PropertyGraph) -> usize {
        match p {
            PathPattern::Node(_) => 0,
            PathPattern::Edge(_) => 1,
            PathPattern::Concat(parts) => parts
                .iter()
                .map(|x| walk(x, graph))
                .fold(0usize, |a, b| a.saturating_add(b)),
            PathPattern::Paren {
                restrictor, inner, ..
            } => {
                let inner = walk(inner, graph);
                match restrictor {
                    Some(r) => inner.min(restrictor_bound(*r, graph)),
                    None => inner,
                }
            }
            PathPattern::Quantified { inner, quantifier } => {
                let body = walk(inner, graph);
                match quantifier.max {
                    Some(m) => body.saturating_mul(m as usize),
                    None => INF,
                }
            }
            PathPattern::Questioned(inner) => walk(inner, graph),
            PathPattern::Union(bs) | PathPattern::Alternation(bs) => {
                bs.iter().map(|x| walk(x, graph)).max().unwrap_or(0)
            }
        }
    }
    let raw = walk(pattern, graph);
    match path_restrictor {
        Some(r) => raw.min(restrictor_bound(r, graph)),
        None => raw,
    }
}

fn restrictor_bound(r: Restrictor, graph: &PropertyGraph) -> usize {
    match r {
        // A trail uses each edge at most once.
        Restrictor::Trail => graph.edge_count(),
        // An acyclic path visits each node at most once.
        Restrictor::Acyclic => graph.node_count().saturating_sub(1).max(1),
        // A simple path may additionally close back to its start.
        Restrictor::Simple => graph.node_count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze;
    use crate::ast::{Direction, GraphPattern, LabelExpr};
    use crate::normalize::normalize;
    use property_graph::{EdgeId, Endpoints, Value};

    fn opts() -> EvalOptions {
        EvalOptions::default()
    }

    fn run(
        graph: &PropertyGraph,
        pattern: PathPattern,
        restrictor: Option<Restrictor>,
        selector_groups: Option<usize>,
    ) -> Vec<PathBinding> {
        let gp = GraphPattern {
            paths: vec![crate::ast::PathPatternExpr {
                // A selector stands in for the termination cover when the
                // test drives dominance pruning directly.
                selector: selector_groups.map(|_| crate::ast::Selector::AnyShortest),
                restrictor,
                path_var: None,
                pattern,
            }],
            where_clause: None,
        };
        let normalized = normalize(&gp);
        analyze(&normalized).unwrap();
        let o = opts();
        let pattern = &normalized.paths[0].pattern;
        let nfa = compile(pattern);
        let prune = resolve_prune(&nfa, restrictor, selector_groups).unwrap();
        let params = Params::new();
        let m = Matcher::over(graph, &nfa, pattern, restrictor, prune, &o, &params);
        let starts: Vec<NodeId> = graph.nodes().collect();
        m.run_from(&starts).unwrap()
    }

    fn node(v: &str) -> PathPattern {
        PathPattern::Node(NodePattern::var(v))
    }

    fn labeled(v: &str, l: &str) -> PathPattern {
        PathPattern::Node(NodePattern::var(v).with_label(LabelExpr::label(l)))
    }

    fn edge_r(v: &str) -> PathPattern {
        PathPattern::Edge(EdgePattern::any(Direction::Right).with_var(v))
    }

    fn chain3() -> (PropertyGraph, [NodeId; 3], [EdgeId; 2]) {
        let mut g = PropertyGraph::new();
        let a = g.add_node("a", ["N"], [("x", Value::Int(1))]);
        let b = g.add_node("b", ["N"], [("x", Value::Int(2))]);
        let c = g.add_node("c", ["M"], [("x", Value::Int(3))]);
        let e1 = g.add_edge("e1", Endpoints::directed(a, b), ["T"], []);
        let e2 = g.add_edge("e2", Endpoints::directed(b, c), ["T"], []);
        (g, [a, b, c], [e1, e2])
    }

    #[test]
    fn single_node_pattern_matches_every_node() {
        let (g, ..) = chain3();
        let ms = run(&g, node("x"), None, None);
        assert_eq!(ms.len(), 3);
        assert!(ms.iter().all(|m| m.path.is_empty()));
    }

    #[test]
    fn label_filters_nodes() {
        let (g, [_, _, c], _) = chain3();
        let ms = run(&g, labeled("x", "M"), None, None);
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].get("x"), Some(&BoundValue::Node(c)));
    }

    #[test]
    fn edge_pattern_binds_endpoints() {
        let (g, [a, b, _], [e1, _]) = chain3();
        let p = PathPattern::concat(vec![node("s"), edge_r("e"), node("t")]);
        let ms = run(&g, p, None, None);
        assert_eq!(ms.len(), 2);
        let first = ms
            .iter()
            .find(|m| m.get("e") == Some(&BoundValue::Edge(e1)))
            .unwrap();
        assert_eq!(first.get("s"), Some(&BoundValue::Node(a)));
        assert_eq!(first.get("t"), Some(&BoundValue::Node(b)));
    }

    #[test]
    fn undirected_pattern_traverses_both_ways() {
        let mut g = PropertyGraph::new();
        let a = g.add_node("a", ["N"], []);
        let b = g.add_node("b", ["N"], []);
        g.add_edge("u", Endpoints::undirected(a, b), ["U"], []);
        let p = PathPattern::concat(vec![
            node("s"),
            PathPattern::Edge(EdgePattern::any(Direction::Undirected).with_var("e")),
            node("t"),
        ]);
        let ms = run(&g, p, None, None);
        // Once from each endpoint.
        assert_eq!(ms.len(), 2);
    }

    #[test]
    fn any_direction_matches_directed_twice() {
        // (x)-[e]-(y): each directed edge returns twice, once per
        // traversal direction (§4.2).
        let mut g = PropertyGraph::new();
        let a = g.add_node("a", ["N"], []);
        let b = g.add_node("b", ["N"], []);
        g.add_edge("d", Endpoints::directed(a, b), ["T"], []);
        let p = PathPattern::concat(vec![
            node("x"),
            PathPattern::Edge(EdgePattern::any(Direction::Any).with_var("e")),
            node("y"),
        ]);
        let ms = run(&g, p, None, None);
        assert_eq!(ms.len(), 2);
    }

    #[test]
    fn repeated_variable_is_equi_join() {
        // (s)-[e1]->(m)-[e2]->(s): no triangle in a chain.
        let (g, ..) = chain3();
        let p = PathPattern::concat(vec![
            node("s"),
            edge_r("e1"),
            node("m"),
            edge_r("e2"),
            node("s"),
        ]);
        assert!(run(&g, p, None, None).is_empty());

        // Add the closing edge: the triangle appears.
        let mut g = g;
        let (a, c) = (g.node_by_name("a").unwrap(), g.node_by_name("c").unwrap());
        g.add_edge("e3", Endpoints::directed(c, a), ["T"], []);
        let p = PathPattern::concat(vec![
            node("s"),
            edge_r("e1"),
            node("m"),
            edge_r("e2"),
            node("n"),
            edge_r("e3"),
            node("s"),
        ]);
        let ms = run(&g, p, None, None);
        assert_eq!(ms.len(), 3); // one per rotation
    }

    #[test]
    fn bounded_quantifier_lengths() {
        let (g, [a, _, c], _) = chain3();
        // (s)[()-[t]->()]{1,2}(d): paths of length 1 or 2.
        let body = PathPattern::concat(vec![
            PathPattern::Node(NodePattern::any()),
            edge_r("t"),
            PathPattern::Node(NodePattern::any()),
        ])
        .paren();
        let p = PathPattern::concat(vec![
            node("s"),
            body.quantified(Quantifier::range(1, Some(2))),
            node("d"),
        ]);
        let ms = run(&g, p, None, None);
        // length 1: a→b, b→c; length 2: a→b→c.
        assert_eq!(ms.len(), 3);
        let two = ms.iter().find(|m| m.path.len() == 2).unwrap();
        assert_eq!(two.get("s"), Some(&BoundValue::Node(a)));
        assert_eq!(two.get("d"), Some(&BoundValue::Node(c)));
        assert_eq!(
            two.get("t"),
            Some(&BoundValue::EdgeGroup(vec![EdgeId(0), EdgeId(1)]))
        );
    }

    #[test]
    fn zero_iterations_bind_empty_groups() {
        let (g, ..) = chain3();
        let body = PathPattern::concat(vec![
            PathPattern::Node(NodePattern::any()),
            edge_r("t"),
            PathPattern::Node(NodePattern::any()),
        ])
        .paren();
        let p = PathPattern::concat(vec![
            node("s"),
            body.quantified(Quantifier::range(0, Some(1))),
        ]);
        let ms = run(&g, p, None, None);
        // 3 zero-iteration matches + 2 one-iteration matches.
        assert_eq!(ms.len(), 5);
        let zero = ms.iter().filter(|m| m.path.is_empty()).count();
        assert_eq!(zero, 3);
        for m in ms.iter().filter(|m| m.path.is_empty()) {
            assert_eq!(m.get("t"), Some(&BoundValue::EdgeGroup(vec![])));
        }
    }

    #[test]
    fn trail_restrictor_prunes_repeated_edges() {
        // Two-node cycle: a→b→a→b... TRAIL caps at 2 edges.
        let mut g = PropertyGraph::new();
        let a = g.add_node("a", ["N"], []);
        let b = g.add_node("b", ["N"], []);
        g.add_edge("ab", Endpoints::directed(a, b), ["T"], []);
        g.add_edge("ba", Endpoints::directed(b, a), ["T"], []);
        let body = PathPattern::concat(vec![
            PathPattern::Node(NodePattern::any()),
            edge_r("t"),
            PathPattern::Node(NodePattern::any()),
        ])
        .paren();
        let p = PathPattern::concat(vec![
            node("s"),
            body.quantified(Quantifier::plus()),
            node("d"),
        ]);
        let ms = run(&g, p, Some(Restrictor::Trail), None);
        // From a: a→b, a→b→a; from b: b→a, b→a→b. All trails.
        assert_eq!(ms.len(), 4);
        assert!(ms.iter().all(|m| m.path.is_trail()));
    }

    #[test]
    fn acyclic_restrictor_prunes_repeated_nodes() {
        let mut g = PropertyGraph::new();
        let a = g.add_node("a", ["N"], []);
        let b = g.add_node("b", ["N"], []);
        g.add_edge("ab", Endpoints::directed(a, b), ["T"], []);
        g.add_edge("ba", Endpoints::directed(b, a), ["T"], []);
        let body = PathPattern::concat(vec![
            PathPattern::Node(NodePattern::any()),
            edge_r("t"),
            PathPattern::Node(NodePattern::any()),
        ])
        .paren();
        let p = PathPattern::concat(vec![
            node("s"),
            body.quantified(Quantifier::plus()),
            node("d"),
        ]);
        let ms = run(&g, p, Some(Restrictor::Acyclic), None);
        // Only the two single-edge paths are acyclic.
        assert_eq!(ms.len(), 2);
    }

    #[test]
    fn simple_restrictor_allows_closing_cycle() {
        // Triangle: SIMPLE admits the full cycle, ACYCLIC does not.
        let mut g = PropertyGraph::new();
        let a = g.add_node("a", ["N"], []);
        let b = g.add_node("b", ["N"], []);
        let c = g.add_node("c", ["N"], []);
        g.add_edge("ab", Endpoints::directed(a, b), ["T"], []);
        g.add_edge("bc", Endpoints::directed(b, c), ["T"], []);
        g.add_edge("ca", Endpoints::directed(c, a), ["T"], []);
        let body = PathPattern::concat(vec![
            PathPattern::Node(NodePattern::any()),
            edge_r("t"),
            PathPattern::Node(NodePattern::any()),
        ])
        .paren();
        let p = PathPattern::concat(vec![
            node("s"),
            body.clone().quantified(Quantifier::range(3, Some(3))),
            node("s"),
        ]);
        let simple = run(&g, p.clone(), Some(Restrictor::Simple), None);
        assert_eq!(simple.len(), 3); // one rotation per start
        let acyclic = run(&g, p, Some(Restrictor::Acyclic), None);
        assert!(acyclic.is_empty());
    }

    #[test]
    fn selector_pruning_terminates_on_cycles() {
        // a→b→a cycle with an unbounded star and no restrictor: selector
        // pruning must terminate and find the shortest paths.
        let mut g = PropertyGraph::new();
        let a = g.add_node("a", ["N"], []);
        let b = g.add_node("b", ["N"], []);
        g.add_edge("ab", Endpoints::directed(a, b), ["T"], []);
        g.add_edge("ba", Endpoints::directed(b, a), ["T"], []);
        let body = PathPattern::concat(vec![
            PathPattern::Node(NodePattern::any()),
            edge_r("t"),
            PathPattern::Node(NodePattern::any()),
        ])
        .paren();
        let p = PathPattern::concat(vec![
            node("s"),
            body.quantified(Quantifier::star()),
            node("d"),
        ]);
        let ms = run(&g, p, None, Some(1));
        // Shortest per partition: (a,a) len 0, (b,b) len 0, (a,b) len 1,
        // (b,a) len 1. Dominance pruning may keep a few extras; at minimum
        // the shortest ones exist and the search terminated.
        assert!(ms.iter().any(|m| m.path.is_empty()));
        assert!(ms
            .iter()
            .any(|m| m.path.len() == 1 && m.path.start() == a && m.path.end() == b));
        assert!(ms
            .iter()
            .any(|m| m.path.len() == 1 && m.path.start() == b && m.path.end() == a));
        // Nothing longer than |N| per partition survives pruning at k=1.
        assert!(ms.iter().all(|m| m.path.len() <= 2));
    }

    #[test]
    fn question_mark_exposes_conditional_singletons() {
        let (g, [_, b, c], [_, e2]) = chain3();
        // (x) [-[e]->(y)]?
        let opt = PathPattern::Questioned(Box::new(
            PathPattern::concat(vec![edge_r("e"), node("y")]).paren(),
        ));
        let p = PathPattern::concat(vec![labeled("x", "N"), opt]);
        let ms = run(&g, p, None, None);
        // x∈{a,b} each with: no match, plus one extension. a→b, b→c.
        assert_eq!(ms.len(), 4);
        let with_edge: Vec<_> = ms.iter().filter(|m| m.path.len() == 1).collect();
        assert_eq!(with_edge.len(), 2);
        // Bound as singletons, not groups.
        let m = with_edge
            .iter()
            .find(|m| m.get("x") == Some(&BoundValue::Node(b)))
            .unwrap();
        assert_eq!(m.get("e"), Some(&BoundValue::Edge(e2)));
        assert_eq!(m.get("y"), Some(&BoundValue::Node(c)));
        // Unmatched option leaves variables unbound.
        let without: Vec<_> = ms.iter().filter(|m| m.path.is_empty()).collect();
        assert!(without.iter().all(|m| m.get("e").is_none()));
    }

    #[test]
    fn union_and_alternation_marks() {
        let (g, ..) = chain3();
        // (x:N) | (x:N): same matches; marks only differ for |+|.
        let u = PathPattern::Union(vec![labeled("x", "N"), labeled("x", "N")]);
        let ms = run(&g, u, None, None);
        assert!(ms.iter().all(|m| m.alt_marks.is_empty()));

        let alt = PathPattern::Alternation(vec![labeled("x", "N"), labeled("x", "N")]);
        let ms = run(&g, alt, None, None);
        assert_eq!(ms.len(), 4); // 2 nodes × 2 branches
        assert!(ms.iter().all(|m| m.alt_marks.len() == 1));
    }

    #[test]
    fn per_iteration_predicate() {
        // [()-[t]->() WHERE t.w>1]{1,2} — only heavy edges.
        let mut g = PropertyGraph::new();
        let a = g.add_node("a", ["N"], []);
        let b = g.add_node("b", ["N"], []);
        let c = g.add_node("c", ["N"], []);
        g.add_edge(
            "ab",
            Endpoints::directed(a, b),
            ["T"],
            [("w", Value::Int(5))],
        );
        g.add_edge(
            "bc",
            Endpoints::directed(b, c),
            ["T"],
            [("w", Value::Int(0))],
        );
        let body = PathPattern::Paren {
            restrictor: None,
            inner: Box::new(PathPattern::concat(vec![
                PathPattern::Node(NodePattern::any()),
                edge_r("t"),
                PathPattern::Node(NodePattern::any()),
            ])),
            predicate: Some(Expr::cmp(
                crate::ast::CmpOp::Gt,
                Expr::prop("t", "w"),
                Expr::lit(1),
            )),
        };
        let p = PathPattern::concat(vec![
            node("s"),
            PathPattern::Quantified {
                inner: Box::new(body),
                quantifier: Quantifier::range(1, Some(2)),
            },
            node("d"),
        ]);
        let ms = run(&g, p, None, None);
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].path.len(), 1);
        assert_eq!(ms[0].get("s"), Some(&BoundValue::Node(a)));
    }

    #[test]
    fn question_mark_nested_in_quantifier_groups_outward() {
        // (s) [ (□)-[e]->(□) [~[u]~(p)]? ]{1,2} : the `?` exposes u/p as
        // singletons within each iteration, and the enclosing quantifier
        // then collects them into groups.
        let mut g = PropertyGraph::new();
        let a = g.add_node("a", ["N"], []);
        let b = g.add_node("b", ["N"], []);
        let c = g.add_node("c", ["N"], []);
        let p1 = g.add_node("p1", ["P"], []);
        g.add_edge("ab", Endpoints::directed(a, b), ["T"], []);
        g.add_edge("bc", Endpoints::directed(b, c), ["T"], []);
        g.add_edge("u1", Endpoints::undirected(b, p1), ["U"], []);
        let opt = PathPattern::Questioned(Box::new(
            PathPattern::concat(vec![
                PathPattern::Edge(EdgePattern::any(Direction::Undirected).with_var("u")),
                PathPattern::Node(NodePattern::var("p").with_label(LabelExpr::label("P"))),
            ])
            .paren(),
        ));
        let body = PathPattern::concat(vec![
            PathPattern::Node(NodePattern::any()),
            PathPattern::Edge(
                EdgePattern::any(Direction::Right)
                    .with_var("e")
                    .with_label(LabelExpr::label("T")),
            ),
            PathPattern::Node(NodePattern::any()),
            opt,
        ])
        .paren();
        let pattern = PathPattern::concat(vec![
            node("s"),
            PathPattern::Quantified {
                inner: Box::new(body),
                quantifier: Quantifier::range(1, Some(2)),
            },
        ]);
        let ms = run(&g, pattern, None, None);
        // Walks from a: a→b (±u1 detour), a→b~p1; a→b→c combinations; from
        // b: b→c (no detour possible at c). Check the group classification:
        // u and p become groups at the top level.
        assert!(!ms.is_empty());
        for m in &ms {
            if let Some(v) = m.get("u") {
                assert!(
                    matches!(v, BoundValue::EdgeGroup(_)),
                    "u must be grouped outward, got {v:?}"
                );
            }
            if let Some(v) = m.get("p") {
                assert!(matches!(v, BoundValue::NodeGroup(_)), "{v:?}");
            }
        }
        // At least one match took the optional detour.
        assert!(ms.iter().any(|m| matches!(
            m.get("u"),
            Some(BoundValue::EdgeGroup(es)) if !es.is_empty()
        )));
    }

    #[test]
    fn deferred_prefilter_on_later_variable() {
        // (a WHERE a.x = d.x) -[e]-> (d): the prefilter mentions d before
        // it is bound and must be re-checked at completion.
        let mut g = PropertyGraph::new();
        let a = g.add_node("a", ["N"], [("x", Value::Int(7))]);
        let b = g.add_node("b", ["N"], [("x", Value::Int(7))]);
        let c = g.add_node("c", ["N"], [("x", Value::Int(9))]);
        g.add_edge("ab", Endpoints::directed(a, b), ["T"], []);
        g.add_edge("ac", Endpoints::directed(a, c), ["T"], []);
        let p = PathPattern::concat(vec![
            PathPattern::Node(
                NodePattern::var("a").with_predicate(Expr::prop("a", "x").eq(Expr::prop("d", "x"))),
            ),
            edge_r("e"),
            node("d"),
        ]);
        let ms = run(&g, p, None, None);
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].get("d"), Some(&BoundValue::Node(b)));
    }
}
