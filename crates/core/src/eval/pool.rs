//! Scoped work-splitting for parallel stage matching.
//!
//! The product-automaton search of a [`PathStage`](crate::plan) is
//! independent per start node: dominance-pruning keys carry the start
//! node, so partitioning the start set never changes which states survive,
//! and the per-stage reduce/dedup pass sorts its input, so the raw match
//! order never changes the stage's bindings. That makes "split the start
//! nodes into contiguous chunks and search each chunk on its own thread"
//! a semantics-preserving parallelization — the executor only has to
//! splice the per-chunk results back together in chunk order.
//!
//! This module provides the two pieces the executor needs, built on
//! `std::thread::scope` (the build environment has no crates.io access,
//! so no rayon):
//!
//! * [`chunks`] — the deterministic partition of `n` items into at most
//!   `threads` contiguous ranges, with a minimum chunk size so tiny
//!   graphs are not sliced into spawn-dominated confetti;
//! * [`run_units`] — a tiny work-stealing pool: `unit_count` work items
//!   are claimed off a shared atomic counter by up to `threads` scoped
//!   workers, and results are delivered to a sink closure *on the
//!   caller's thread* as they land, in completion order. The sink can
//!   stop the run early (the executor does this when the accumulated
//!   join is already empty), which cancels undelivered units at their
//!   next claim.

use std::ops::ControlFlow;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Minimum number of start nodes one worker chunk should carry. Below
/// this the per-thread spawn cost dominates the search itself.
pub(crate) const MIN_CHUNK: usize = 16;

/// Partitions `0..items` into at most `threads` contiguous ranges of
/// near-equal size (earlier ranges get the remainder), each at least
/// [`MIN_CHUNK`] long where possible. Returns an empty vector for zero
/// items and a single full range when splitting is not worth it.
pub(crate) fn chunks(items: usize, threads: usize) -> Vec<Range<usize>> {
    if items == 0 {
        return Vec::new();
    }
    let parts = threads.min(items / MIN_CHUNK).max(1);
    let base = items / parts;
    let extra = items % parts;
    let mut out = Vec::with_capacity(parts);
    let mut at = 0;
    for i in 0..parts {
        let len = base + usize::from(i < extra);
        out.push(at..at + len);
        at += len;
    }
    debug_assert_eq!(at, items);
    out
}

/// Maximum number of hub start nodes one base chunk is split around:
/// bounds the unit-count explosion on graphs where "everything is a hub"
/// (where splitting buys nothing anyway — the load is already uniform).
pub(crate) const MAX_HUB_SPLITS: usize = 4;

/// [`chunks`], refined by degree skew: any base chunk containing a *hub*
/// start node (per `is_hub`, typically "degree ≫ label average" from the
/// statistics catalog's degree histogram) is split around the first
/// [`MAX_HUB_SPLITS`] hubs it contains, so one expensive start node gets
/// its own work unit instead of serializing a whole chunk behind it.
///
/// The refined ranges still cover `0..items` contiguously and in order —
/// splicing per-unit results back in range order yields exactly the
/// concatenation the base chunking would have produced, so determinism is
/// untouched; only the work-stealing granularity changes.
pub(crate) fn adaptive_chunks(
    items: usize,
    threads: usize,
    is_hub: impl Fn(usize) -> bool,
) -> Vec<Range<usize>> {
    let base = chunks(items, threads);
    if threads <= 1 {
        return base;
    }
    let mut out = Vec::with_capacity(base.len());
    for range in base {
        if range.len() <= 1 {
            out.push(range);
            continue;
        }
        let mut at = range.start;
        let mut splits = 0;
        for i in range.clone() {
            if splits >= MAX_HUB_SPLITS {
                break;
            }
            if is_hub(i) {
                if i > at {
                    out.push(at..i);
                }
                out.push(i..i + 1);
                at = i + 1;
                splits += 1;
            }
        }
        if at < range.end {
            out.push(at..range.end);
        }
    }
    debug_assert_eq!(out.iter().map(Range::len).sum::<usize>(), items);
    out
}

/// Runs `unit_count` work units on up to `threads` scoped worker threads,
/// delivering `(unit index, result)` pairs to `sink` on the caller's
/// thread as they complete (in completion order, not unit order).
///
/// Workers claim unit indices off a shared counter, so cheap units never
/// idle a thread while an expensive one runs. When `sink` returns
/// [`ControlFlow::Break`], delivery stops; workers finish the unit they
/// are on, fail their next send, and exit. With `threads <= 1` (or a
/// single unit) everything runs inline on the caller's thread — the
/// sequential path stays allocation- and thread-free.
pub(crate) fn run_units<R: Send>(
    threads: usize,
    unit_count: usize,
    work: impl Fn(usize) -> R + Sync,
    mut sink: impl FnMut(usize, R) -> ControlFlow<()>,
) {
    if threads <= 1 || unit_count <= 1 {
        for u in 0..unit_count {
            if sink(u, work(u)).is_break() {
                return;
            }
        }
        return;
    }
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    std::thread::scope(|scope| {
        for _ in 0..threads.min(unit_count) {
            let tx = tx.clone();
            let next = &next;
            let work = &work;
            scope.spawn(move || loop {
                let u = next.fetch_add(1, Ordering::Relaxed);
                if u >= unit_count {
                    break;
                }
                if tx.send((u, work(u))).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        for (u, r) in rx {
            if sink(u, r).is_break() {
                // Dropping the receiver makes every later send fail, so
                // workers wind down after at most one more unit each.
                break;
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_cover_and_do_not_overlap() {
        for items in [0usize, 1, 5, 16, 17, 100, 1000] {
            for threads in [1usize, 2, 4, 8] {
                let cs = chunks(items, threads);
                assert!(cs.len() <= threads.max(1));
                let mut at = 0;
                for c in &cs {
                    assert_eq!(c.start, at, "{items} items / {threads} threads");
                    assert!(!c.is_empty());
                    at = c.end;
                }
                assert_eq!(at, items, "chunks must cover 0..{items}");
            }
        }
    }

    #[test]
    fn small_inputs_are_not_oversplit() {
        // 20 items at MIN_CHUNK=16: at most 2 chunks however many threads.
        assert!(chunks(20, 8).len() <= 2);
        assert_eq!(chunks(5, 8).len(), 1);
    }

    #[test]
    fn adaptive_chunks_isolate_hubs_in_order() {
        // 64 items, hubs at 10 and 40: each hub gets a singleton unit and
        // coverage stays contiguous and ordered.
        let hubs = [10usize, 40];
        let cs = adaptive_chunks(64, 2, |i| hubs.contains(&i));
        let mut at = 0;
        for c in &cs {
            assert_eq!(c.start, at);
            assert!(!c.is_empty());
            at = c.end;
        }
        assert_eq!(at, 64);
        for h in hubs {
            assert!(
                cs.contains(&(h..h + 1)),
                "hub {h} must be its own unit: {cs:?}"
            );
        }
        // No hubs → identical to the base chunking.
        assert_eq!(adaptive_chunks(64, 2, |_| false), chunks(64, 2));
        // Sequential runs never split (there is no pool to feed).
        assert_eq!(adaptive_chunks(64, 1, |i| hubs.contains(&i)), chunks(64, 1));
    }

    #[test]
    fn adaptive_chunks_cap_hub_splits() {
        // Every item a hub: the split count stays bounded per base chunk.
        let cs = adaptive_chunks(64, 2, |_| true);
        let singletons = cs.iter().filter(|c| c.len() == 1).count();
        assert!(singletons <= 2 * MAX_HUB_SPLITS, "{cs:?}");
        assert_eq!(cs.iter().map(|c| c.len()).sum::<usize>(), 64);
    }

    #[test]
    fn run_units_delivers_every_unit_once() {
        for threads in [1usize, 2, 4] {
            let mut seen = vec![0u32; 64];
            run_units(
                threads,
                64,
                |u| u * 3,
                |u, r| {
                    assert_eq!(r, u * 3);
                    seen[u] += 1;
                    ControlFlow::Continue(())
                },
            );
            assert!(seen.iter().all(|&c| c == 1), "{threads} threads: {seen:?}");
        }
    }

    #[test]
    fn run_units_stops_on_break() {
        let delivered = std::cell::Cell::new(0usize);
        run_units(
            4,
            1000,
            |u| u,
            |_, _| {
                delivered.set(delivered.get() + 1);
                if delivered.get() >= 5 {
                    ControlFlow::Break(())
                } else {
                    ControlFlow::Continue(())
                }
            },
        );
        assert_eq!(delivered.get(), 5);
    }
}
