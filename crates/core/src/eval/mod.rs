//! The production evaluation engine.
//!
//! [`evaluate`] runs a full graph pattern against a property graph,
//! following the §6 execution model: each comma-separated path pattern is
//! matched independently (normalization happened up front; expansion is
//! implicit in the matcher's quantifier loops), its raw matches are
//! *reduced* and *deduplicated* (§6.5), selectors are applied per endpoint
//! partition (§5.1), and the per-pattern result sets are joined on shared
//! unconditional singleton variables and filtered by the final `WHERE`
//! postfilter.
//!
//! Three match modes reproduce the §3 semantic comparison:
//!
//! * [`MatchMode::Gpml`] — the paper's semantics (default);
//! * [`MatchMode::EndpointOnly`] — SPARQL-style property-path semantics:
//!   only path endpoints are observable, so results collapse to distinct
//!   endpoint bindings (one cannot count or reconstruct paths);
//! * [`MatchMode::GsqlDefault`] — GSQL's default `ALL SHORTEST`: an
//!   unbounded quantifier with no explicit selector or restrictor
//!   implicitly receives `ALL SHORTEST` instead of being rejected.

pub(crate) mod filter;
pub mod flat;
pub(crate) mod matcher;
pub(crate) mod pool;
pub(crate) mod selector;

use std::cell::RefCell;
use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};

use property_graph::{NodeId, PropertyGraph};

pub use filter::{eval as eval_expr, truth as expr_truth, Env};

use crate::ast::{GraphPattern, PathPatternExpr};
use crate::binding::{BoundValue, MatchRow, MatchSet, PathBinding};
use crate::error::Result;
use crate::params::Params;
use crate::plan::{prepare, ExistsPlans};

/// Semantics variant (§3 comparison modes).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum MatchMode {
    /// The GPML semantics of the paper.
    #[default]
    Gpml,
    /// SPARQL property-path semantics: endpoint existence only.
    EndpointOnly,
    /// GSQL semantics: unbounded quantifiers default to `ALL SHORTEST`.
    GsqlDefault,
}

/// Match-isomorphism modes — the §7.1 language opportunity
/// ("constraining a graph pattern through the introduction of isomorphic
/// match modes").
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum MatchIso {
    /// The GPML default: different pattern positions may match the same
    /// graph element (homomorphic matching).
    #[default]
    Homomorphism,
    /// All edges matched across all constituent path patterns of the
    /// graph pattern must differ from each other.
    EdgeIsomorphic,
}

/// Evaluation knobs and resource limits.
///
/// Options are `Eq + Hash` so hosts can key plan caches on
/// `(query text, EvalOptions)`.
///
/// ```
/// use gpml_core::ast::*;
/// use gpml_core::eval::{evaluate, EvalOptions};
/// use property_graph::{Endpoints, PropertyGraph};
///
/// let mut g = PropertyGraph::new();
/// let a = g.add_node("a", ["N"], []);
/// let b = g.add_node("b", ["N"], []);
/// g.add_edge("ab", Endpoints::directed(a, b), ["T"], []);
/// let pattern = GraphPattern::single(PathPattern::concat(vec![
///     PathPattern::Node(NodePattern::var("x")),
///     PathPattern::Edge(EdgePattern::any(Direction::Right)),
///     PathPattern::Node(NodePattern::var("y")),
/// ]));
///
/// // Parallel matching is bit-for-bit identical to sequential.
/// let sequential = EvalOptions { threads: 1, ..EvalOptions::default() };
/// let parallel = EvalOptions { threads: 4, ..EvalOptions::default() };
/// assert_eq!(
///     evaluate(&g, &pattern, &sequential)?,
///     evaluate(&g, &pattern, &parallel)?,
/// );
/// # Ok::<(), gpml_core::Error>(())
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct EvalOptions {
    /// Which of the §3 semantics to apply.
    pub mode: MatchMode,
    /// Optional §7.1 isomorphic match mode.
    pub isomorphism: MatchIso,
    /// Ablation knob: check restrictors only when a match completes
    /// instead of pruning during the search. Semantics are unchanged
    /// (static caps keep the search finite); cost is not — this is what
    /// the EB8 ablation bench measures. Not meaningful together with
    /// selector-covered unbounded quantifiers.
    pub defer_restrictors: bool,
    /// Cost-based optimizer knob: execute path-pattern stages in the
    /// order chosen by the cardinality estimator over the graph's
    /// statistics catalog instead of declaration order. Results are
    /// order-insensitive (the cross-stage join is commutative); only cost
    /// changes. Disable to measure the declaration-order baseline.
    pub reorder_stages: bool,
    /// Cost-based optimizer knob: merge stages through a hash join on the
    /// shared singleton join keys instead of the all-pairs nested loop.
    /// Semantics are identical; disable to measure the nested-loop
    /// baseline.
    pub hash_join: bool,
    /// Cost-based optimizer knob: sideways information passing. After each
    /// cross-stage merge, the distinct join-key node sets of the
    /// accumulated rows are pushed *into* later stages' matchers as
    /// endpoint filters, so bindings that cannot join are never generated.
    /// The estimator applies a filter only where its key-set estimate is
    /// smaller than the stage being filtered (and never to stages whose
    /// selector or match mode could observe the pruned bindings), keeping
    /// results — rows *and* order — bit-for-bit identical. Only
    /// resource-limit *errors* may differ: filtered searches generate
    /// fewer raw matches, so a run with filters can succeed where the
    /// unfiltered run trips [`EvalOptions::max_matches`]. Disable to
    /// measure the unfiltered baseline (CLI `--no-semijoin`).
    pub semi_join: bool,
    /// Worker threads for parallel stage matching. `0` (the default)
    /// resolves to the machine's available parallelism but stays
    /// sequential on small graphs, where spawn cost would dominate; `1`
    /// forces the sequential path; `n >= 2` always uses `n` workers.
    ///
    /// Results are **bit-for-bit identical** at every setting: per-stage
    /// searches are partitioned by start node, spliced back in partition
    /// order, and merged through the join in the same cost-chosen stage
    /// order as the sequential executor. Only resource-limit *errors* may
    /// differ — each partition enforces [`EvalOptions::max_frontier`] on
    /// its own (smaller) frontier, so a parallel run can succeed where a
    /// sequential run trips the limit.
    pub threads: usize,
    /// Execute path stages with the flat transition-array interpreter
    /// ([`flat::FlatProgram`]) instead of the pointer-chasing NFA walk.
    /// Results are **bit-for-bit identical** (rows *and* order) either
    /// way — the legacy engine is kept as the differential oracle
    /// (CLI `--no-flat`, `GPML_FLAT=off` in the agreement suite); only
    /// cost changes.
    pub flat: bool,
    /// Abort after this many raw matches for a single path pattern.
    pub max_matches: usize,
    /// Hard cap on the number of edges in any matched walk.
    pub max_path_length: usize,
    /// Abort when the search frontier exceeds this many states.
    pub max_frontier: usize,
}

/// Node count below which `threads = 0` (auto) stays sequential: spawning
/// workers for a graph this small costs more than the whole search.
const AUTO_PARALLEL_MIN_NODES: usize = 256;

impl EvalOptions {
    /// The worker count `threads` resolves to: the machine's available
    /// parallelism for `0` (auto), the explicit count otherwise.
    pub fn resolved_threads(&self) -> usize {
        match self.threads {
            0 => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            n => n,
        }
    }

    /// The worker count the executor actually uses for a graph with
    /// `node_count` nodes: an explicit `threads >= 1` is always honored,
    /// while auto (`0`) falls back to sequential on small graphs.
    pub(crate) fn effective_threads(&self, node_count: usize) -> usize {
        if self.threads == 0 && node_count < AUTO_PARALLEL_MIN_NODES {
            1
        } else {
            self.resolved_threads()
        }
    }
}

impl Default for EvalOptions {
    fn default() -> EvalOptions {
        EvalOptions {
            mode: MatchMode::Gpml,
            isomorphism: MatchIso::Homomorphism,
            defer_restrictors: false,
            reorder_stages: true,
            hash_join: true,
            semi_join: true,
            flat: true,
            threads: 0,
            max_matches: 1_000_000,
            max_path_length: 10_000,
            max_frontier: 1_000_000,
        }
    }
}

/// Execution counters for one stage's product-automaton search,
/// accumulated across all of the stage's partitions. Atomics, so parallel
/// partition searches add concurrently without coordination; the numbers
/// are exact because every partition is counted exactly once.
#[derive(Debug, Default)]
pub struct StageCounters {
    nodes_expanded: AtomicU64,
    edges_traversed: AtomicU64,
    rows_pruned: AtomicU64,
    instrs_dispatched: AtomicU64,
    backtrack_truncations: AtomicU64,
    micros: AtomicU64,
}

impl StageCounters {
    /// Folds one search's tallies in.
    pub(crate) fn add(&self, nodes: u64, edges: u64, pruned: u64, instrs: u64, truncations: u64) {
        self.nodes_expanded.fetch_add(nodes, Ordering::Relaxed);
        self.edges_traversed.fetch_add(edges, Ordering::Relaxed);
        self.rows_pruned.fetch_add(pruned, Ordering::Relaxed);
        self.instrs_dispatched.fetch_add(instrs, Ordering::Relaxed);
        self.backtrack_truncations
            .fetch_add(truncations, Ordering::Relaxed);
    }

    /// Search states dequeued and expanded.
    pub fn nodes_expanded(&self) -> u64 {
        self.nodes_expanded.load(Ordering::Relaxed)
    }

    /// Adjacency steps attempted from expanded states.
    pub fn edges_traversed(&self) -> u64 {
        self.edges_traversed.load(Ordering::Relaxed)
    }

    /// Partial bindings rejected by a pushed-down semi-join filter.
    pub fn rows_pruned(&self) -> u64 {
        self.rows_pruned.load(Ordering::Relaxed)
    }

    /// Flat-program instructions dispatched by the inner matching loop
    /// (zero when the legacy NFA engine ran instead).
    pub fn instrs_dispatched(&self) -> u64 {
        self.instrs_dispatched.load(Ordering::Relaxed)
    }

    /// Backtracks that truncated the flat interpreter's undo trail to a
    /// stack watermark (zero under the legacy engine).
    pub fn backtrack_truncations(&self) -> u64 {
        self.backtrack_truncations.load(Ordering::Relaxed)
    }

    /// Folds in wall time spent matching this stage. Under parallel
    /// execution each partition's worker adds its own share, so this is
    /// *work* time: it can exceed the stage's wall-clock span.
    pub(crate) fn add_micros(&self, micros: u64) {
        self.micros.fetch_add(micros, Ordering::Relaxed);
    }

    /// Microseconds spent matching this stage, summed over partitions.
    pub fn micros(&self) -> u64 {
        self.micros.load(Ordering::Relaxed)
    }
}

/// Per-stage execution counters for one query run, collected by the
/// matcher when the caller asks for a profiled execution (CLI `--explain`
/// post-run output, the server's `STATS` accumulation).
#[derive(Debug, Default)]
pub struct ExecProfile {
    stages: Vec<StageCounters>,
}

impl ExecProfile {
    /// A profile with one counter block per plan stage.
    pub fn new(stage_count: usize) -> ExecProfile {
        ExecProfile {
            stages: (0..stage_count).map(|_| StageCounters::default()).collect(),
        }
    }

    /// The per-stage counter blocks, indexed by declaration stage index.
    pub fn stages(&self) -> &[StageCounters] {
        &self.stages
    }

    pub(crate) fn stage(&self, i: usize) -> Option<&StageCounters> {
        self.stages.get(i)
    }

    /// Totals across all stages: `(nodes expanded, edges traversed, rows
    /// pruned by semi-join, flat instructions dispatched, backtrack
    /// truncations)`.
    pub fn totals(&self) -> (u64, u64, u64, u64, u64) {
        self.stages
            .iter()
            .fold((0, 0, 0, 0, 0), |(n, e, p, i, b), s| {
                (
                    n + s.nodes_expanded(),
                    e + s.edges_traversed(),
                    p + s.rows_pruned(),
                    i + s.instrs_dispatched(),
                    b + s.backtrack_truncations(),
                )
            })
    }
}

/// Evaluates `MATCH pattern` against `graph`.
///
/// This is the one-shot entry point: a thin wrapper that lowers the
/// pattern through the [`crate::plan`] layer (mode rewrite → normalize →
/// analyze → compile → join/select/filter stages) and executes the plan
/// once. Callers that run the same pattern repeatedly should call
/// [`crate::plan::prepare`] themselves and hold on to the
/// [`crate::plan::PreparedQuery`].
pub fn evaluate(
    graph: &PropertyGraph,
    pattern: &GraphPattern,
    opts: &EvalOptions,
) -> Result<MatchSet> {
    prepare(pattern, opts)?.execute(graph)
}

/// Cross product of the per-pattern match sets, joined on shared variables
/// and filtered by the final `WHERE` (§6.5 "Multiple patterns") — the
/// declaration-order nested-loop form used by the §6 spec-literal
/// baseline. The plan executor drives a [`JoinState`] directly instead,
/// feeding stages in cost order and joining through hash tables where the
/// plan's join keys allow. `exists` carries any subplans prepared for the
/// postfilter's `EXISTS` subqueries; patterns without a prepared subplan
/// are prepared on the fly (the baseline's path).
pub(crate) fn join_and_filter(
    graph: &PropertyGraph,
    normalized: &GraphPattern,
    per_path: &[Vec<PathBinding>],
    opts: &EvalOptions,
    exists: &ExistsPlans,
) -> MatchSet {
    let mut join = JoinState::new(opts.isomorphism);
    for (expr, bindings) in normalized.paths.iter().zip(per_path) {
        join.merge_stage(expr, bindings, &[], false);
    }
    join.finish(graph, normalized, opts, exists, &Params::new())
}

/// Incremental cross-stage join: the accumulated rows of all stages merged
/// so far. Stages may be fed in any order (the merge is commutative up to
/// row order); the executor feeds them in the cost-chosen order and stops
/// early once the accumulation is empty.
pub(crate) struct JoinState {
    iso: MatchIso,
    /// Rows carry the edges their constituent walks used so the
    /// edge-isomorphic mode (§7.1) can reject overlaps across patterns.
    rows: Vec<(MatchRow, Vec<property_graph::EdgeId>)>,
}

impl JoinState {
    /// The unit of the join: one empty row.
    pub(crate) fn new(iso: MatchIso) -> JoinState {
        JoinState {
            iso,
            rows: vec![(MatchRow::empty(), Vec::new())],
        }
    }

    /// True when no combination of the stages merged so far survives —
    /// every further merge (and the postfilter) is then a no-op.
    pub(crate) fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The distinct node ids the accumulated rows bind `var` to, or
    /// `None` when any row lacks `var` or binds it to a non-node — the
    /// semi-join key-set extraction of sideways information passing.
    /// A later stage sharing `var` can only produce joinable bindings
    /// with `var` inside this set.
    pub(crate) fn distinct_key_nodes(&self, var: &str) -> Option<BTreeSet<NodeId>> {
        let mut set = BTreeSet::new();
        for (row, _) in &self.rows {
            match row.values.get(var) {
                Some(BoundValue::Node(n)) => {
                    set.insert(*n);
                }
                _ => return None,
            }
        }
        Some(set)
    }

    /// Merges one stage's bindings into the accumulation.
    ///
    /// `keys` are the stage's equi-join variables against the already
    /// merged stages (shared unconditional singletons, from the plan's
    /// join graph). With `use_hash` and non-empty keys the merge builds a
    /// hash table on the smaller side and probes with the other; otherwise
    /// it scans all pairs. Both paths run the same per-pair admission
    /// check ([`JoinState::try_merge`]), so results — including the
    /// edge-isomorphism overlap rejection and path-variable bindings — are
    /// identical; the hash table only skips pairs that would fail the
    /// equi-join anyway. Output row order is the nested loop's
    /// (accumulated row outer, stage binding inner) in either case.
    pub(crate) fn merge_stage(
        &mut self,
        expr: &PathPatternExpr,
        bindings: &[PathBinding],
        keys: &[String],
        use_hash: bool,
    ) {
        // Join keys are unconditional singletons, so they are bound on
        // both sides of every candidate pair; verify that before trusting
        // the hash path (a missing key would make strict key equality
        // drop pairs the nested loop admits).
        let hashable = use_hash
            && !keys.is_empty()
            && self
                .rows
                .iter()
                .all(|(row, _)| keys.iter().all(|k| row.values.contains_key(k)))
            && bindings
                .iter()
                .all(|pb| keys.iter().all(|k| pb.bindings.contains_key(k)));
        if !hashable {
            let mut next = Vec::new();
            for (row, used) in &self.rows {
                for pb in bindings {
                    if let Some(out) = self.try_merge(row, used, pb, expr) {
                        next.push(out);
                    }
                }
            }
            self.rows = next;
            return;
        }

        let row_key = |row: &MatchRow| -> Vec<BoundValue> {
            keys.iter().map(|k| row.values[k].clone()).collect()
        };
        let binding_key = |pb: &PathBinding| -> Vec<BoundValue> {
            keys.iter().map(|k| pb.bindings[k].clone()).collect()
        };

        let mut next = Vec::new();
        if self.rows.len() < bindings.len() {
            // Build on the accumulated rows, probe with the stage
            // bindings, then restore nested-loop output order by sorting
            // the surviving (row, binding) index pairs.
            let mut table: HashMap<Vec<BoundValue>, Vec<usize>> = HashMap::new();
            for (i, (row, _)) in self.rows.iter().enumerate() {
                table.entry(row_key(row)).or_default().push(i);
            }
            let mut pairs: Vec<(usize, usize)> = Vec::new();
            for (j, pb) in bindings.iter().enumerate() {
                if let Some(is) = table.get(&binding_key(pb)) {
                    pairs.extend(is.iter().map(|&i| (i, j)));
                }
            }
            pairs.sort_unstable();
            for (i, j) in pairs {
                let (row, used) = &self.rows[i];
                if let Some(out) = self.try_merge(row, used, &bindings[j], expr) {
                    next.push(out);
                }
            }
        } else {
            // Build on the stage bindings (bucket entries keep declaration
            // order), probe with the accumulated rows.
            let mut table: HashMap<Vec<BoundValue>, Vec<usize>> = HashMap::new();
            for (j, pb) in bindings.iter().enumerate() {
                table.entry(binding_key(pb)).or_default().push(j);
            }
            for (row, used) in &self.rows {
                if let Some(js) = table.get(&row_key(row)) {
                    for &j in js {
                        if let Some(out) = self.try_merge(row, used, &bindings[j], expr) {
                            next.push(out);
                        }
                    }
                }
            }
        }
        self.rows = next;
    }

    /// Admits one (accumulated row, stage binding) pair: the §7.1
    /// edge-isomorphism overlap check, the per-variable equi-join on all
    /// shared names, and the path-variable binding.
    fn try_merge(
        &self,
        row: &MatchRow,
        used: &[property_graph::EdgeId],
        pb: &PathBinding,
        expr: &PathPatternExpr,
    ) -> Option<(MatchRow, Vec<property_graph::EdgeId>)> {
        if self.iso == MatchIso::EdgeIsomorphic {
            // The walk itself must not repeat an edge, nor reuse one
            // matched by another path pattern.
            if !pb.path.is_trail() || pb.path.edges().iter().any(|e| used.contains(e)) {
                return None;
            }
        }
        let mut merged = row.clone();
        for (var, val) in &pb.bindings {
            match merged.values.get(var) {
                Some(existing) if existing != val => return None,
                Some(_) => {}
                None => {
                    merged.values.insert(var.clone(), val.clone());
                }
            }
        }
        if let Some(pv) = &expr.path_var {
            merged
                .values
                .insert(pv.clone(), BoundValue::Path(pb.path.clone()));
        }
        let mut used = used.to_vec();
        used.extend_from_slice(pb.path.edges());
        Some((merged, used))
    }

    /// Applies the final `WHERE` postfilter and produces the result set.
    /// `params` supplies the values of any `$name` placeholders in the
    /// postfilter (and in prepared `EXISTS` subplans).
    pub(crate) fn finish(
        self,
        graph: &PropertyGraph,
        normalized: &GraphPattern,
        opts: &EvalOptions,
        exists: &ExistsPlans,
        params: &Params,
    ) -> MatchSet {
        let mut rows: Vec<MatchRow> = self.rows.into_iter().map(|(r, _)| r).collect();
        if let Some(post) = &normalized.where_clause {
            // EXISTS subqueries are evaluated once per distinct subpattern
            // and joined against each row on shared variable names.
            let cache: RefCell<HashMap<GraphPattern, Option<MatchSet>>> =
                RefCell::new(HashMap::new());
            rows.retain(|row| {
                let env = RowEnv {
                    graph,
                    row,
                    opts,
                    exists,
                    params,
                    cache: &cache,
                };
                filter::truth(graph, &env, post) == Some(true)
            });
        }
        MatchSet { rows }
    }
}

/// A host-side projection environment: variable lookups from a joined
/// result row plus `$name` lookups from the execution's parameter
/// bindings. The GQL `RETURN`/`ORDER BY` and SQL/PGQ `COLUMNS`
/// projections evaluate through one of these, so host expressions see
/// exactly the values the pattern predicates saw.
pub struct RowParamEnv<'a> {
    /// The joined result row providing variable bindings.
    pub row: &'a MatchRow,
    /// The execution's parameter bindings.
    pub params: &'a Params,
}

impl filter::Env for RowParamEnv<'_> {
    fn lookup(&self, var: &str) -> Option<BoundValue> {
        self.row.get(var).cloned()
    }

    fn param(&self, name: &str) -> Option<property_graph::Value> {
        self.params.get(name).cloned()
    }
}

/// Postfilter environment: row lookups plus `EXISTS` subquery support
/// with per-subpattern memoization.
struct RowEnv<'a> {
    graph: &'a PropertyGraph,
    row: &'a MatchRow,
    opts: &'a EvalOptions,
    exists: &'a ExistsPlans,
    params: &'a Params,
    cache: &'a RefCell<HashMap<GraphPattern, Option<MatchSet>>>,
}

impl filter::Env for RowEnv<'_> {
    fn lookup(&self, var: &str) -> Option<BoundValue> {
        self.row.get(var).cloned()
    }

    fn param(&self, name: &str) -> Option<property_graph::Value> {
        self.params.get(name).cloned()
    }

    fn exists(&self, pattern: &GraphPattern) -> Option<bool> {
        let mut cache = self.cache.borrow_mut();
        let sub = cache.entry(pattern.clone()).or_insert_with(|| {
            // Prefer the subplan prepared at prepare time; fall back to a
            // one-shot prepare for callers (the baseline) without one.
            // Either way the *outer* execution's bindings flow in — the
            // enclosing plan's bind-time validation covered the
            // subpattern's parameters too.
            match self.exists.get(pattern) {
                Some(subplan) => subplan.execute_bound(self.graph, self.params).ok(),
                None => prepare(pattern, self.opts)
                    .ok()
                    .and_then(|q| q.execute_bound(self.graph, self.params).ok()),
            }
        });
        let sub = sub.as_ref()?;
        // Correlation: a subquery match must agree with the enclosing row
        // on every variable the two share.
        Some(sub.rows.iter().any(|subrow| {
            subrow
                .values
                .iter()
                .all(|(var, val)| match self.row.get(var) {
                    Some(outer) => outer == val,
                    None => true,
                })
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::*;
    use property_graph::{Endpoints, NodeId, Value};

    fn node(v: &str) -> PathPattern {
        PathPattern::Node(NodePattern::var(v))
    }

    fn edge_r(v: &str) -> PathPattern {
        PathPattern::Edge(EdgePattern::any(Direction::Right).with_var(v))
    }

    /// A 4-cycle a→b→c→d→a with amounts.
    fn cycle4() -> PropertyGraph {
        let mut g = PropertyGraph::new();
        let ids: Vec<NodeId> = (0..4)
            .map(|i| {
                g.add_node(
                    &format!("n{i}"),
                    ["Account"],
                    [("owner", Value::str(format!("o{i}")))],
                )
            })
            .collect();
        for i in 0..4 {
            let (s, d) = (ids[i], ids[(i + 1) % 4]);
            g.add_edge(
                &format!("t{i}"),
                Endpoints::directed(s, d),
                ["Transfer"],
                [("amount", Value::Int(1 + i as i64))],
            );
        }
        g
    }

    #[test]
    fn cross_pattern_join_on_singleton() {
        let g = cycle4();
        // MATCH (s)-[e1]->(m), (m)-[e2]->(t): join on m.
        let gp = GraphPattern {
            paths: vec![
                PathPatternExpr::plain(PathPattern::concat(vec![
                    node("s"),
                    edge_r("e1"),
                    node("m"),
                ])),
                PathPatternExpr::plain(PathPattern::concat(vec![
                    node("m"),
                    edge_r("e2"),
                    node("t"),
                ])),
            ],
            where_clause: None,
        };
        let rs = evaluate(&g, &gp, &EvalOptions::default()).unwrap();
        // Each of the 4 edges joins with exactly one follower.
        assert_eq!(rs.len(), 4);
        for row in rs.iter() {
            assert_ne!(row.get("e1"), row.get("e2"));
        }
    }

    #[test]
    fn postfilter_with_group_aggregate() {
        let g = cycle4();
        // MATCH (a) [()-[t:Transfer]->()]{2,2} (b) WHERE SUM(t.amount) > 5
        let body = PathPattern::concat(vec![
            PathPattern::Node(NodePattern::any()),
            PathPattern::Edge(
                EdgePattern::any(Direction::Right)
                    .with_var("t")
                    .with_label(LabelExpr::label("Transfer")),
            ),
            PathPattern::Node(NodePattern::any()),
        ])
        .paren();
        let gp = GraphPattern {
            paths: vec![PathPatternExpr::plain(PathPattern::concat(vec![
                node("a"),
                body.quantified(Quantifier::range(2, Some(2))),
                node("b"),
            ]))],
            where_clause: Some(Expr::cmp(
                CmpOp::Gt,
                Expr::Aggregate {
                    func: AggFunc::Sum,
                    arg: AggArg::Property("t".into(), "amount".into()),
                    distinct: false,
                },
                Expr::lit(5),
            )),
        };
        let rs = evaluate(&g, &gp, &EvalOptions::default()).unwrap();
        // Chains of 2: sums 1+2=3, 2+3=5, 3+4=7, 4+1=5 → only 7 survives.
        assert_eq!(rs.len(), 1);
    }

    #[test]
    fn union_deduplicates_alternation_does_not() {
        let g = cycle4();
        let branch =
            || PathPattern::Node(NodePattern::var("c").with_label(LabelExpr::label("Account")));
        // (c:Account) | (c:Account) → 4 rows (set).
        let gp = GraphPattern::single(PathPattern::Union(vec![branch(), branch()]));
        let rs = evaluate(&g, &gp, &EvalOptions::default()).unwrap();
        assert_eq!(rs.len(), 4);
        // (c:Account) |+| (c:Account) → 8 rows (multiset).
        let gp = GraphPattern::single(PathPattern::Alternation(vec![branch(), branch()]));
        let rs = evaluate(&g, &gp, &EvalOptions::default()).unwrap();
        assert_eq!(rs.len(), 8);
    }

    #[test]
    fn overlapping_quantifiers_union_equals_merged_range() {
        // ->{1,2} | ->{2,3} over a directed chain ≡ ->{1,3} (§4.5).
        let mut g = PropertyGraph::new();
        let ns: Vec<NodeId> = (0..5)
            .map(|i| g.add_node(&format!("n{i}"), ["N"], []))
            .collect();
        for i in 0..4 {
            g.add_edge(
                &format!("e{i}"),
                Endpoints::directed(ns[i], ns[i + 1]),
                ["T"],
                [],
            );
        }
        let quant = |m, n| {
            PathPattern::Edge(EdgePattern::any(Direction::Right))
                .quantified(Quantifier::range(m, Some(n)))
        };
        let union = GraphPattern::single(PathPattern::Union(vec![quant(1, 2), quant(2, 3)]));
        let merged = GraphPattern::single(quant(1, 3));
        let a = evaluate(&g, &union, &EvalOptions::default()).unwrap();
        let b = evaluate(&g, &merged, &EvalOptions::default()).unwrap();
        assert_eq!(a.len(), b.len());
    }

    #[test]
    fn selector_applies_after_dedup() {
        let g = cycle4();
        // ANY SHORTEST (a)[()-[t]->()]*(b): one path per reachable pair.
        let body = PathPattern::concat(vec![
            PathPattern::Node(NodePattern::any()),
            edge_r("t"),
            PathPattern::Node(NodePattern::any()),
        ])
        .paren();
        let gp = GraphPattern {
            paths: vec![PathPatternExpr {
                selector: Some(Selector::AnyShortest),
                restrictor: None,
                path_var: Some("p".into()),
                pattern: PathPattern::concat(vec![
                    node("a"),
                    body.quantified(Quantifier::star()),
                    node("b"),
                ]),
            }],
            where_clause: None,
        };
        let rs = evaluate(&g, &gp, &EvalOptions::default()).unwrap();
        // 4×4 ordered pairs, all reachable on a cycle.
        assert_eq!(rs.len(), 16);
        for row in rs.iter() {
            let p = row.get("p").unwrap().as_path().unwrap();
            assert!(p.len() <= 3);
        }
    }

    #[test]
    fn endpoint_only_mode_collapses_paths() {
        let g = cycle4();
        let body = PathPattern::concat(vec![
            PathPattern::Node(NodePattern::any()),
            edge_r("t"),
            PathPattern::Node(NodePattern::any()),
        ])
        .paren();
        let pattern = PathPattern::concat(vec![
            node("a"),
            body.quantified(Quantifier::range(1, Some(3))),
            node("b"),
        ]);
        let gpml = evaluate(
            &g,
            &GraphPattern::single(pattern.clone()),
            &EvalOptions::default(),
        )
        .unwrap();
        let sparql = evaluate(
            &g,
            &GraphPattern::single(pattern),
            &EvalOptions {
                mode: MatchMode::EndpointOnly,
                ..EvalOptions::default()
            },
        )
        .unwrap();
        // GPML sees each path; SPARQL sees each endpoint pair once.
        assert_eq!(gpml.len(), 12); // lengths 1,2,3 from each of 4 starts
        assert_eq!(sparql.len(), 4 * 3); // distinct (start,end) pairs
        assert!(sparql.len() <= gpml.len());
    }

    #[test]
    fn gsql_default_mode_injects_all_shortest() {
        let g = cycle4();
        let body = PathPattern::concat(vec![
            PathPattern::Node(NodePattern::any()),
            edge_r("t"),
            PathPattern::Node(NodePattern::any()),
        ])
        .paren();
        let pattern = PathPattern::concat(vec![
            node("a"),
            body.quantified(Quantifier::plus()),
            node("b"),
        ]);
        // Plain GPML rejects the uncovered `+`.
        assert!(evaluate(
            &g,
            &GraphPattern::single(pattern.clone()),
            &EvalOptions::default()
        )
        .is_err());
        // GSQL mode evaluates it with implicit ALL SHORTEST.
        let rs = evaluate(
            &g,
            &GraphPattern::single(pattern),
            &EvalOptions {
                mode: MatchMode::GsqlDefault,
                ..EvalOptions::default()
            },
        )
        .unwrap();
        assert_eq!(rs.len(), 16); // all ordered pairs incl. self via cycle
    }

    #[test]
    fn empty_result_when_join_fails() {
        let g = cycle4();
        let gp = GraphPattern {
            paths: vec![PathPatternExpr::plain(PathPattern::concat(vec![
                node("s"),
                edge_r("e"),
                node("s"),
            ]))],
            where_clause: None,
        };
        // No self loops in a 4-cycle.
        let rs = evaluate(&g, &gp, &EvalOptions::default()).unwrap();
        assert!(rs.is_empty());
    }
}
