//! Selector application (§5.1–§5.2, Figure 8).
//!
//! A selector conceptually partitions the solution space on the path's
//! endpoints and keeps a finite subset of each partition. Selectors apply
//! *after* restrictors and after reduction/deduplication (§5.1, §6.5).
//!
//! The paper classifies `ANY`, `ANY k`, `ANY SHORTEST`, and `SHORTEST k`
//! as non-deterministic: an implementation may pick any admissible paths.
//! This implementation picks canonically — shortest first, then the
//! structurally smallest binding — so results are reproducible and the two
//! engines agree exactly.

use std::collections::BTreeMap;

use property_graph::{NodeId, PropertyGraph};

use crate::ast::Selector;
use crate::binding::PathBinding;

/// The cost of a walk under a weight property: the sum of the property
/// over its edges, counting 1 for edges that lack it or hold a
/// non-numeric value (§7.1 cheapest-path language opportunity).
pub(crate) fn path_cost(graph: &PropertyGraph, b: &PathBinding, weight: &str) -> f64 {
    b.path
        .edges()
        .iter()
        .map(|e| graph.edge(*e).property(weight).as_f64().unwrap_or(1.0))
        .sum()
}

/// Applies `selector` to a deduplicated match set.
pub(crate) fn apply(
    graph: &PropertyGraph,
    selector: &Selector,
    bindings: Vec<PathBinding>,
) -> Vec<PathBinding> {
    // Partition on endpoints.
    let mut partitions: BTreeMap<(NodeId, NodeId), Vec<PathBinding>> = BTreeMap::new();
    for b in bindings {
        partitions
            .entry((b.path.start(), b.path.end()))
            .or_default()
            .push(b);
    }
    let mut out = Vec::new();
    for (_, mut part) in partitions {
        // Canonical order: by length (or cost), then structurally.
        match selector {
            Selector::AnyCheapest { weight } | Selector::CheapestK { weight, .. } => {
                part.sort_by(|a, b| {
                    path_cost(graph, a, weight)
                        .total_cmp(&path_cost(graph, b, weight))
                        .then_with(|| a.path.len().cmp(&b.path.len()))
                        .then_with(|| a.cmp(b))
                });
            }
            _ => part.sort_by(|a, b| a.path.len().cmp(&b.path.len()).then_with(|| a.cmp(b))),
        }
        match selector {
            Selector::Any | Selector::AnyShortest | Selector::AnyCheapest { .. } => {
                out.extend(part.into_iter().next());
            }
            Selector::AnyK(k) => {
                out.extend(part.into_iter().take(*k as usize));
            }
            Selector::AllShortest => {
                let min = part.first().map(|b| b.path.len());
                out.extend(part.into_iter().take_while(|b| Some(b.path.len()) == min));
            }
            Selector::ShortestK(k) | Selector::CheapestK { k, .. } => {
                out.extend(part.into_iter().take(*k as usize));
            }
            Selector::ShortestKGroup(k) => {
                let mut lengths = Vec::new();
                for b in part {
                    if !lengths.contains(&b.path.len()) {
                        if lengths.len() == *k as usize {
                            break;
                        }
                        lengths.push(b.path.len());
                    }
                    out.push(b);
                }
            }
        }
    }
    out
}

/// How many distinct length groups per partition the selector can keep —
/// the dominance-pruning budget the matcher uses for unbounded
/// quantifiers covered only by a selector. Cost-based selectors provide
/// no length budget (see [`Selector::covers_termination`]).
pub(crate) fn length_groups(selector: &Selector) -> Option<usize> {
    match selector {
        Selector::Any | Selector::AnyShortest | Selector::AllShortest => Some(1),
        Selector::AnyK(k) | Selector::ShortestK(k) | Selector::ShortestKGroup(k) => {
            Some((*k as usize).max(1))
        }
        Selector::AnyCheapest { .. } | Selector::CheapestK { .. } => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use property_graph::{EdgeId, Endpoints, Path, Value};

    /// A dense dummy graph so any (nodes, edges) used by `pb` exist;
    /// edge `e{i}` has weight i.
    fn dummy() -> PropertyGraph {
        let mut g = PropertyGraph::new();
        let ns: Vec<_> = (0..8)
            .map(|i| g.add_node(&format!("n{i}"), ["N"], []))
            .collect();
        for i in 0..8u32 {
            g.add_edge(
                &format!("e{i}"),
                Endpoints::directed(ns[(i % 8) as usize], ns[((i + 1) % 8) as usize]),
                ["T"],
                [("w", Value::Int(i as i64))],
            );
        }
        g
    }

    /// Builds a binding for a synthetic path `n0 -e..-> nk` described by
    /// node indices.
    fn pb(nodes: &[u32], edges: &[u32]) -> PathBinding {
        PathBinding {
            path: Path::new(
                nodes.iter().map(|n| NodeId(*n)).collect(),
                edges.iter().map(|e| EdgeId(*e)).collect(),
            ),
            bindings: BTreeMap::new(),
            alt_marks: Vec::new(),
        }
    }

    fn sample() -> Vec<PathBinding> {
        vec![
            // Partition (0, 2): lengths 1, 2, 2, 3.
            pb(&[0, 2], &[0]),
            pb(&[0, 1, 2], &[1, 2]),
            pb(&[0, 3, 2], &[3, 4]),
            pb(&[0, 1, 3, 2], &[1, 5, 4]),
            // Partition (5, 5): length 2.
            pb(&[5, 6, 5], &[6, 7]),
        ]
    }

    #[test]
    fn any_shortest_keeps_one_per_partition() {
        let out = apply(&dummy(), &Selector::AnyShortest, sample());
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].path.len(), 1);
        assert_eq!(out[1].path.len(), 2);
    }

    #[test]
    fn all_shortest_keeps_ties_only_at_minimum() {
        let mut input = sample();
        input.remove(0); // drop the unique length-1 path
        let out = apply(&dummy(), &Selector::AllShortest, input);
        // Partition (0,2): both length-2 paths; partition (5,5): one.
        assert_eq!(out.len(), 3);
        assert!(out.iter().all(|b| b.path.len() == 2));
    }

    #[test]
    fn any_k_and_shortest_k_take_k() {
        let out = apply(&dummy(), &Selector::AnyK(2), sample());
        assert_eq!(out.len(), 3); // 2 from (0,2), 1 from (5,5)
        let out = apply(&dummy(), &Selector::ShortestK(3), sample());
        assert_eq!(out.len(), 4);
        // Shortest-first within the partition.
        assert_eq!(out[0].path.len(), 1);
        assert_eq!(out[1].path.len(), 2);
        assert_eq!(out[2].path.len(), 2);
    }

    #[test]
    fn shortest_k_group_keeps_whole_length_groups() {
        let out = apply(&dummy(), &Selector::ShortestKGroup(2), sample());
        // (0,2): lengths {1, 2} → 3 paths; excludes length 3. (5,5): 1.
        assert_eq!(out.len(), 4);
        assert!(out.iter().all(|b| b.path.len() <= 2));

        let out = apply(&dummy(), &Selector::ShortestKGroup(1), sample());
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn fewer_than_k_keeps_all() {
        let out = apply(&dummy(), &Selector::ShortestK(10), sample());
        assert_eq!(out.len(), 5);
        let out = apply(&dummy(), &Selector::AnyK(10), sample());
        assert_eq!(out.len(), 5);
    }

    #[test]
    fn partitions_are_independent() {
        // Shortest lengths can differ per partition (§5.1).
        let input = vec![pb(&[0, 2], &[0]), pb(&[5, 6, 5], &[6, 7])];
        let out = apply(&dummy(), &Selector::AllShortest, input);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].path.len(), 1);
        assert_eq!(out[1].path.len(), 2);
    }

    #[test]
    fn length_group_budgets() {
        assert_eq!(length_groups(&Selector::AnyShortest), Some(1));
        assert_eq!(length_groups(&Selector::AllShortest), Some(1));
        assert_eq!(length_groups(&Selector::Any), Some(1));
        assert_eq!(length_groups(&Selector::AnyK(4)), Some(4));
        assert_eq!(length_groups(&Selector::ShortestK(2)), Some(2));
        assert_eq!(length_groups(&Selector::ShortestKGroup(3)), Some(3));
        assert_eq!(
            length_groups(&Selector::AnyCheapest { weight: "w".into() }),
            None
        );
    }

    #[test]
    fn cheapest_prefers_low_cost_over_short_length() {
        let g = dummy();
        // Partition (0,2): direct edge e7 would not connect 0→2 in the
        // dummy; use costs instead — e0 (w=0) + e1 (w=1) beats e3+e4
        // (w=7) and the length-1 path using e… here we rely on `pb`
        // indices: pb([0,2],[7]) costs 7; pb([0,1,2],[0,1]) costs 1.
        let input = vec![pb(&[0, 2], &[7]), pb(&[0, 1, 2], &[0, 1])];
        let out = apply(
            &g,
            &Selector::AnyCheapest { weight: "w".into() },
            input.clone(),
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].path.len(), 2, "the longer-but-cheaper path wins");
        // Missing weights count as 1.
        let out = apply(
            &g,
            &Selector::AnyCheapest {
                weight: "ghost".into(),
            },
            input,
        );
        assert_eq!(out[0].path.len(), 1);
        // CHEAPEST k keeps the k cheapest.
        let input = vec![
            pb(&[0, 2], &[7]),
            pb(&[0, 1, 2], &[0, 1]),
            pb(&[0, 3, 2], &[2, 3]),
        ];
        let out = apply(
            &g,
            &Selector::CheapestK {
                k: 2,
                weight: "w".into(),
            },
            input,
        );
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|b| b.path.len() == 2));
    }
}
