//! The flat edge-centric plan IR and its trail-backtracking interpreter.
//!
//! The production matcher interprets a pointer-rich NFA: every
//! expansion chases `Vec<StateData>` → `Vec<EpsTrans>` indirections and
//! clones the whole run state per ε-transition. This
//! module lowers that NFA into a [`FlatProgram`] — one contiguous
//! `Vec<Instr>` where *transitions are primary and states are implicit*:
//! each instruction carries its opcode, operand table index, and target
//! program counter inline, and a state survives only as the PC of its
//! first instruction. The inner matching loop becomes a linear walk over
//! contiguous memory.
//!
//! # Watermark backtracking
//!
//! Instead of cloning a state per ε-transition, the interpreter keeps ONE
//! mutable working state plus an *undo trail*. The DFS stack holds bare
//! `(pc, trail watermark)` pairs; popping an entry truncates the trail
//! back to its watermark — undoing, in reverse order, every mutation made
//! since that configuration was current — and then applies the popped
//! instruction in place. Because the restored state is byte-identical to
//! the state the legacy engine would have cloned, the two engines take
//! the same transitions in the same order and produce bit-for-bit
//! identical results (rows AND order), which the agreement test-suite
//! asserts with the legacy engine as differential oracle
//! ([`EvalOptions::flat`] = false).
//!
//! # Binary layout
//!
//! [`FlatProgram::to_bytes`] emits a versioned little-endian encoding:
//!
//! ```text
//! magic "GPLN" | version u32 | fnv1a-64 checksum of payload | payload
//! ```
//!
//! The payload is `start`, `accept`, the instruction array, and the four
//! operand tables (node patterns, edge patterns, quantifier and paren
//! metadata), with every string length-prefixed and every enum tagged.
//! [`FlatProgram::from_bytes`] verifies magic, version, and checksum,
//! bounds-checks every instruction target and operand index, and rejects
//! trailing bytes — round-tripping is structural equality. The server
//! uses this encoding to persist its shared plan cache across restarts.

use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::fmt;

use property_graph::{NodeId, Path, PropertyGraph, Value};

use crate::ast::{
    AggArg, AggFunc, ArithOp, CmpOp, Direction, EdgePattern, Expr, GraphPattern, LabelExpr,
    NodePattern, PathPattern, PathPatternExpr, Quantifier, Restrictor, Selector,
};
use crate::binding::{BoundValue, PathBinding};
use crate::error::{Error, Result};
use crate::eval::matcher::{
    self, Action, BindSite, Frame, Loop, MergeEffect, Nfa, ParenMeta, PruneMode, QuantMeta,
    RunState, Scope, SemiJoinFilters,
};
use crate::eval::{EvalOptions, StageCounters};
use crate::params::Params;

// ---------------------------------------------------------------------------
// Instruction set
// ---------------------------------------------------------------------------

/// Flat-program opcodes: the nine ε-actions of the NFA, plus `Consume`
/// (a graph step under an edge pattern) and `Halt` (a dead state).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub(crate) enum Op {
    /// Plain ε: jump to `target`.
    Jump = 0,
    /// Test the current node against node pattern `arg`; bind its variable.
    NodeTest = 1,
    /// Begin parenthesized scope `arg` (restrictor bookkeeping).
    OpenParen = 2,
    /// End parenthesized scope `arg`; evaluate its `WHERE` prefilter.
    CloseParen = 3,
    /// Enter quantifier `arg` (push a loop counter).
    EnterQuant = 4,
    /// Begin one iteration of quantifier `arg` (push a variable frame).
    IterStart = 5,
    /// End one iteration of quantifier `arg` (merge the frame outward).
    IterEnd = 6,
    /// Leave quantifier `arg`. Guarded by `count >= min`.
    ExitQuant = 7,
    /// Record alternation branch `arg` (multiset provenance, §4.5).
    AltMark = 8,
    /// Traverse one graph edge under edge pattern `arg`.
    Consume = 9,
    /// Dead state: no transitions at all.
    Halt = 10,
}

impl Op {
    fn from_u8(b: u8) -> Option<Op> {
        Some(match b {
            0 => Op::Jump,
            1 => Op::NodeTest,
            2 => Op::OpenParen,
            3 => Op::CloseParen,
            4 => Op::EnterQuant,
            5 => Op::IterStart,
            6 => Op::IterEnd,
            7 => Op::ExitQuant,
            8 => Op::AltMark,
            9 => Op::Consume,
            10 => Op::Halt,
            _ => return None,
        })
    }

    fn mnemonic(self) -> &'static str {
        match self {
            Op::Jump => "jmp",
            Op::NodeTest => "ntest",
            Op::OpenParen => "open",
            Op::CloseParen => "close",
            Op::EnterQuant => "enter",
            Op::IterStart => "iter",
            Op::IterEnd => "endit",
            Op::ExitQuant => "exit",
            Op::AltMark => "alt",
            Op::Consume => "step",
            Op::Halt => "halt",
        }
    }
}

/// One flat-program instruction: 10 bytes of opcode + operand index +
/// target PC, laid out contiguously per state block.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct Instr {
    pub(crate) op: Op,
    /// True on the final instruction of its state block — the block scan
    /// terminator, replacing per-state transition vectors.
    pub(crate) last: bool,
    /// Operand-table index (node/edge pattern, quantifier, paren) or the
    /// alternation mark value.
    pub(crate) arg: u32,
    /// Target PC: the first instruction of the successor state's block.
    pub(crate) target: u32,
}

// ---------------------------------------------------------------------------
// The program
// ---------------------------------------------------------------------------

/// A compiled path stage in flat edge-centric form: one contiguous
/// instruction array plus its operand tables. States exist only as
/// program counters (the first instruction of each state's block).
///
/// Produced by lowering the compiled NFA at prepare time; executed by
/// the flat interpreter when [`EvalOptions::flat`] is on (the default);
/// serialized with [`FlatProgram::to_bytes`] for plan-cache persistence.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FlatProgram {
    instrs: Vec<Instr>,
    start: u32,
    accept: u32,
    node_pats: Vec<NodePattern>,
    edge_pats: Vec<EdgePattern>,
    quants: Vec<QuantMeta>,
    parens: Vec<ParenMeta>,
}

impl FlatProgram {
    /// Lowers a compiled NFA into flat form. Each state becomes a block
    /// of instructions — its ε-transitions in order, then its consuming
    /// transitions in order (a `Halt` for states with neither) — with the
    /// block's last instruction flagged as the scan terminator.
    pub(crate) fn from_nfa(nfa: &Nfa) -> FlatProgram {
        let mut block_start = Vec::with_capacity(nfa.states.len());
        let mut next = 0u32;
        for s in &nfa.states {
            block_start.push(next);
            next += (s.eps.len() + s.edges.len()).max(1) as u32;
        }
        let mut instrs = Vec::with_capacity(next as usize);
        for s in &nfa.states {
            let begin = instrs.len();
            for t in &s.eps {
                let (op, arg) = match t.action {
                    Action::None => (Op::Jump, 0),
                    Action::NodeTest(i) => (Op::NodeTest, i as u32),
                    Action::OpenParen(i) => (Op::OpenParen, i as u32),
                    Action::CloseParen(i) => (Op::CloseParen, i as u32),
                    Action::EnterQuant(i) => (Op::EnterQuant, i as u32),
                    Action::IterStart(i) => (Op::IterStart, i as u32),
                    Action::IterEnd(i) => (Op::IterEnd, i as u32),
                    Action::ExitQuant(i) => (Op::ExitQuant, i as u32),
                    Action::AltMark(i) => (Op::AltMark, i),
                };
                instrs.push(Instr {
                    op,
                    last: false,
                    arg,
                    target: block_start[t.to],
                });
            }
            for &(target, ep_idx) in &s.edges {
                instrs.push(Instr {
                    op: Op::Consume,
                    last: false,
                    arg: ep_idx as u32,
                    target: block_start[target],
                });
            }
            if instrs.len() == begin {
                instrs.push(Instr {
                    op: Op::Halt,
                    last: false,
                    arg: 0,
                    target: 0,
                });
            }
            instrs.last_mut().expect("block is non-empty").last = true;
        }
        FlatProgram {
            instrs,
            start: block_start[nfa.start],
            accept: block_start[nfa.accept],
            node_pats: nfa.node_pats.clone(),
            edge_pats: nfa.edge_pats.clone(),
            quants: nfa.quants.clone(),
            parens: nfa.parens.clone(),
        }
    }

    /// Number of instructions in the program (the plan-introspection
    /// metric, replacing compiler-internal NFA state counts).
    pub fn instr_count(&self) -> usize {
        self.instrs.len()
    }

    /// Size of the binary encoding in bytes.
    pub fn encoded_len(&self) -> usize {
        self.to_bytes().len()
    }

    /// Numbers of node tests, edge tests, and quantifiers (operand-table
    /// sizes, for plan cost reports).
    pub fn table_sizes(&self) -> (usize, usize, usize) {
        (
            self.node_pats.len(),
            self.edge_pats.len(),
            self.quants.len(),
        )
    }
}

impl fmt::Display for FlatProgram {
    /// Disassembly: one line per instruction — pc, opcode, operand
    /// (including any variable the instruction binds), and target PC.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "flat program: {} instrs, start={}, accept={}",
            self.instrs.len(),
            self.start,
            self.accept
        )?;
        for (pc, ins) in self.instrs.iter().enumerate() {
            let operand = match ins.op {
                Op::Jump | Op::Halt => String::new(),
                Op::NodeTest => format!("n{} ({})", ins.arg, self.node_pats[ins.arg as usize]),
                Op::Consume => format!("e{} ({})", ins.arg, self.edge_pats[ins.arg as usize]),
                Op::OpenParen | Op::CloseParen => {
                    let p = &self.parens[ins.arg as usize];
                    match p.restrictor {
                        Some(r) => format!("p{} ({r})", ins.arg),
                        None => format!("p{}", ins.arg),
                    }
                }
                Op::EnterQuant | Op::IterStart | Op::IterEnd | Op::ExitQuant => {
                    let q = &self.quants[ins.arg as usize];
                    let max = match q.max {
                        Some(m) => m.to_string(),
                        None => "*".to_owned(),
                    };
                    format!("q{} {{{},{}}}", ins.arg, q.min, max)
                }
                Op::AltMark => format!("#{}", ins.arg),
            };
            writeln!(
                f,
                "{:>5}: {:<6} {:<32} -> {:>4}{}",
                pc,
                ins.op.mnemonic(),
                operand,
                ins.target,
                if ins.last { "  |" } else { "" }
            )?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Binary encoding
// ---------------------------------------------------------------------------

const MAGIC: &[u8; 4] = b"GPLN";
/// Current binary-format version. Bump on any layout change; decoders
/// reject other versions with [`PlanDecodeError::WrongVersion`].
pub const PLAN_FORMAT_VERSION: u32 = 1;
const MAX_DECODE_DEPTH: u32 = 512;

/// Why a byte buffer failed to decode as a [`FlatProgram`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PlanDecodeError {
    /// The buffer does not start with the `GPLN` magic.
    BadMagic,
    /// The buffer was written by a different format version.
    WrongVersion(u32),
    /// The payload checksum does not match (corruption).
    BadChecksum,
    /// The payload is structurally invalid (truncated, bad tag,
    /// out-of-bounds target, trailing bytes, ...).
    Malformed(&'static str),
}

impl fmt::Display for PlanDecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanDecodeError::BadMagic => write!(f, "not a GPLN plan (bad magic)"),
            PlanDecodeError::WrongVersion(v) => {
                write!(f, "unsupported plan format version {v}")
            }
            PlanDecodeError::BadChecksum => write!(f, "plan checksum mismatch"),
            PlanDecodeError::Malformed(what) => write!(f, "malformed plan: {what}"),
        }
    }
}

impl std::error::Error for PlanDecodeError {}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h
}

// ---- writer -------------------------------------------------------------

fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

fn put_bool(out: &mut Vec<u8>, v: bool) {
    out.push(v as u8);
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_opt<T>(out: &mut Vec<u8>, v: &Option<T>, enc: impl FnOnce(&mut Vec<u8>, &T)) {
    match v {
        None => put_u8(out, 0),
        Some(x) => {
            put_u8(out, 1);
            enc(out, x);
        }
    }
}

fn put_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => put_u8(out, 0),
        Value::Bool(b) => {
            put_u8(out, 1);
            put_bool(out, *b);
        }
        Value::Int(i) => {
            put_u8(out, 2);
            put_i64(out, *i);
        }
        Value::Float(x) => {
            put_u8(out, 3);
            put_u64(out, x.to_bits());
        }
        Value::Str(s) => {
            put_u8(out, 4);
            put_str(out, s);
        }
    }
}

fn put_label(out: &mut Vec<u8>, l: &LabelExpr) {
    match l {
        LabelExpr::Wildcard => put_u8(out, 0),
        LabelExpr::Label(s) => {
            put_u8(out, 1);
            put_str(out, s);
        }
        LabelExpr::Not(a) => {
            put_u8(out, 2);
            put_label(out, a);
        }
        LabelExpr::And(a, b) => {
            put_u8(out, 3);
            put_label(out, a);
            put_label(out, b);
        }
        LabelExpr::Or(a, b) => {
            put_u8(out, 4);
            put_label(out, a);
            put_label(out, b);
        }
    }
}

fn put_expr(out: &mut Vec<u8>, e: &Expr) {
    match e {
        Expr::Literal(v) => {
            put_u8(out, 0);
            put_value(out, v);
        }
        Expr::Parameter(s) => {
            put_u8(out, 1);
            put_str(out, s);
        }
        Expr::Var(s) => {
            put_u8(out, 2);
            put_str(out, s);
        }
        Expr::Property(v, p) => {
            put_u8(out, 3);
            put_str(out, v);
            put_str(out, p);
        }
        Expr::Not(a) => {
            put_u8(out, 4);
            put_expr(out, a);
        }
        Expr::And(a, b) => {
            put_u8(out, 5);
            put_expr(out, a);
            put_expr(out, b);
        }
        Expr::Or(a, b) => {
            put_u8(out, 6);
            put_expr(out, a);
            put_expr(out, b);
        }
        Expr::Cmp(op, a, b) => {
            put_u8(out, 7);
            put_u8(
                out,
                match op {
                    CmpOp::Eq => 0,
                    CmpOp::Ne => 1,
                    CmpOp::Lt => 2,
                    CmpOp::Le => 3,
                    CmpOp::Gt => 4,
                    CmpOp::Ge => 5,
                },
            );
            put_expr(out, a);
            put_expr(out, b);
        }
        Expr::Arith(op, a, b) => {
            put_u8(out, 8);
            put_u8(
                out,
                match op {
                    ArithOp::Add => 0,
                    ArithOp::Sub => 1,
                    ArithOp::Mul => 2,
                    ArithOp::Div => 3,
                },
            );
            put_expr(out, a);
            put_expr(out, b);
        }
        Expr::IsNull(a, neg) => {
            put_u8(out, 9);
            put_expr(out, a);
            put_bool(out, *neg);
        }
        Expr::IsDirected(s) => {
            put_u8(out, 10);
            put_str(out, s);
        }
        Expr::IsSourceOf { node, edge } => {
            put_u8(out, 11);
            put_str(out, node);
            put_str(out, edge);
        }
        Expr::IsDestinationOf { node, edge } => {
            put_u8(out, 12);
            put_str(out, node);
            put_str(out, edge);
        }
        Expr::Same(vs) => {
            put_u8(out, 13);
            put_u32(out, vs.len() as u32);
            vs.iter().for_each(|v| put_str(out, v));
        }
        Expr::AllDifferent(vs) => {
            put_u8(out, 14);
            put_u32(out, vs.len() as u32);
            vs.iter().for_each(|v| put_str(out, v));
        }
        Expr::Aggregate {
            func,
            arg,
            distinct,
        } => {
            put_u8(out, 15);
            put_u8(
                out,
                match func {
                    AggFunc::Count => 0,
                    AggFunc::Sum => 1,
                    AggFunc::Avg => 2,
                    AggFunc::Min => 3,
                    AggFunc::Max => 4,
                },
            );
            match arg {
                AggArg::Var(v) => {
                    put_u8(out, 0);
                    put_str(out, v);
                }
                AggArg::VarStar(v) => {
                    put_u8(out, 1);
                    put_str(out, v);
                }
                AggArg::Property(v, p) => {
                    put_u8(out, 2);
                    put_str(out, v);
                    put_str(out, p);
                }
            }
            put_bool(out, *distinct);
        }
        Expr::Exists(gp) => {
            put_u8(out, 16);
            put_graph_pattern(out, gp);
        }
    }
}

fn put_restrictor(out: &mut Vec<u8>, r: &Restrictor) {
    put_u8(
        out,
        match r {
            Restrictor::Trail => 0,
            Restrictor::Acyclic => 1,
            Restrictor::Simple => 2,
        },
    );
}

fn put_direction(out: &mut Vec<u8>, d: Direction) {
    put_u8(
        out,
        match d {
            Direction::Left => 0,
            Direction::Undirected => 1,
            Direction::Right => 2,
            Direction::LeftOrUndirected => 3,
            Direction::UndirectedOrRight => 4,
            Direction::LeftOrRight => 5,
            Direction::Any => 6,
        },
    );
}

fn put_selector(out: &mut Vec<u8>, s: &Selector) {
    match s {
        Selector::AnyShortest => put_u8(out, 0),
        Selector::AllShortest => put_u8(out, 1),
        Selector::Any => put_u8(out, 2),
        Selector::AnyK(k) => {
            put_u8(out, 3);
            put_u32(out, *k);
        }
        Selector::ShortestK(k) => {
            put_u8(out, 4);
            put_u32(out, *k);
        }
        Selector::ShortestKGroup(k) => {
            put_u8(out, 5);
            put_u32(out, *k);
        }
        Selector::AnyCheapest { weight } => {
            put_u8(out, 6);
            put_str(out, weight);
        }
        Selector::CheapestK { k, weight } => {
            put_u8(out, 7);
            put_u32(out, *k);
            put_str(out, weight);
        }
    }
}

fn put_node_pat(out: &mut Vec<u8>, np: &NodePattern) {
    put_opt(out, &np.var, |o, v| put_str(o, v));
    put_opt(out, &np.label, put_label);
    put_opt(out, &np.predicate, put_expr);
}

fn put_edge_pat(out: &mut Vec<u8>, ep: &EdgePattern) {
    put_opt(out, &ep.var, |o, v| put_str(o, v));
    put_opt(out, &ep.label, put_label);
    put_opt(out, &ep.predicate, put_expr);
    put_direction(out, ep.direction);
}

fn put_path_pattern(out: &mut Vec<u8>, p: &PathPattern) {
    match p {
        PathPattern::Node(np) => {
            put_u8(out, 0);
            put_node_pat(out, np);
        }
        PathPattern::Edge(ep) => {
            put_u8(out, 1);
            put_edge_pat(out, ep);
        }
        PathPattern::Concat(parts) => {
            put_u8(out, 2);
            put_u32(out, parts.len() as u32);
            parts.iter().for_each(|x| put_path_pattern(out, x));
        }
        PathPattern::Paren {
            restrictor,
            inner,
            predicate,
        } => {
            put_u8(out, 3);
            put_opt(out, restrictor, put_restrictor);
            put_path_pattern(out, inner);
            put_opt(out, predicate, put_expr);
        }
        PathPattern::Quantified { inner, quantifier } => {
            put_u8(out, 4);
            put_path_pattern(out, inner);
            put_u32(out, quantifier.min);
            put_opt(out, &quantifier.max, |o, m| put_u32(o, *m));
        }
        PathPattern::Questioned(inner) => {
            put_u8(out, 5);
            put_path_pattern(out, inner);
        }
        PathPattern::Union(bs) => {
            put_u8(out, 6);
            put_u32(out, bs.len() as u32);
            bs.iter().for_each(|x| put_path_pattern(out, x));
        }
        PathPattern::Alternation(bs) => {
            put_u8(out, 7);
            put_u32(out, bs.len() as u32);
            bs.iter().for_each(|x| put_path_pattern(out, x));
        }
    }
}

fn put_graph_pattern(out: &mut Vec<u8>, gp: &GraphPattern) {
    put_u32(out, gp.paths.len() as u32);
    for pe in &gp.paths {
        put_opt(out, &pe.selector, put_selector);
        put_opt(out, &pe.restrictor, put_restrictor);
        put_opt(out, &pe.path_var, |o, v| put_str(o, v));
        put_path_pattern(out, &pe.pattern);
    }
    put_opt(out, &gp.where_clause, put_expr);
}

// ---- reader -------------------------------------------------------------

type DecodeResult<T> = std::result::Result<T, PlanDecodeError>;

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> DecodeResult<&'a [u8]> {
        if self.buf.len() - self.pos < n {
            return Err(PlanDecodeError::Malformed("truncated payload"));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> DecodeResult<u8> {
        Ok(self.take(1)?[0])
    }

    fn bool(&mut self) -> DecodeResult<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(PlanDecodeError::Malformed("bad bool")),
        }
    }

    fn u32(&mut self) -> DecodeResult<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> DecodeResult<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn i64(&mut self) -> DecodeResult<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn str(&mut self) -> DecodeResult<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| PlanDecodeError::Malformed("invalid utf-8 string"))
    }

    fn opt<T>(
        &mut self,
        dec: impl FnOnce(&mut Self) -> DecodeResult<T>,
    ) -> DecodeResult<Option<T>> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(dec(self)?)),
            _ => Err(PlanDecodeError::Malformed("bad option tag")),
        }
    }

    fn value(&mut self) -> DecodeResult<Value> {
        Ok(match self.u8()? {
            0 => Value::Null,
            1 => Value::Bool(self.bool()?),
            2 => Value::Int(self.i64()?),
            3 => Value::Float(f64::from_bits(self.u64()?)),
            4 => Value::Str(self.str()?),
            _ => return Err(PlanDecodeError::Malformed("bad value tag")),
        })
    }

    fn label(&mut self, depth: u32) -> DecodeResult<LabelExpr> {
        if depth > MAX_DECODE_DEPTH {
            return Err(PlanDecodeError::Malformed("nesting too deep"));
        }
        Ok(match self.u8()? {
            0 => LabelExpr::Wildcard,
            1 => LabelExpr::Label(self.str()?),
            2 => LabelExpr::Not(Box::new(self.label(depth + 1)?)),
            3 => LabelExpr::And(
                Box::new(self.label(depth + 1)?),
                Box::new(self.label(depth + 1)?),
            ),
            4 => LabelExpr::Or(
                Box::new(self.label(depth + 1)?),
                Box::new(self.label(depth + 1)?),
            ),
            _ => return Err(PlanDecodeError::Malformed("bad label tag")),
        })
    }

    fn strings(&mut self) -> DecodeResult<Vec<String>> {
        let n = self.u32()? as usize;
        let mut out = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            out.push(self.str()?);
        }
        Ok(out)
    }

    fn expr(&mut self, depth: u32) -> DecodeResult<Expr> {
        if depth > MAX_DECODE_DEPTH {
            return Err(PlanDecodeError::Malformed("nesting too deep"));
        }
        let d = depth + 1;
        Ok(match self.u8()? {
            0 => Expr::Literal(self.value()?),
            1 => Expr::Parameter(self.str()?),
            2 => Expr::Var(self.str()?),
            3 => Expr::Property(self.str()?, self.str()?),
            4 => Expr::Not(Box::new(self.expr(d)?)),
            5 => Expr::And(Box::new(self.expr(d)?), Box::new(self.expr(d)?)),
            6 => Expr::Or(Box::new(self.expr(d)?), Box::new(self.expr(d)?)),
            7 => {
                let op = match self.u8()? {
                    0 => CmpOp::Eq,
                    1 => CmpOp::Ne,
                    2 => CmpOp::Lt,
                    3 => CmpOp::Le,
                    4 => CmpOp::Gt,
                    5 => CmpOp::Ge,
                    _ => return Err(PlanDecodeError::Malformed("bad cmp op")),
                };
                Expr::Cmp(op, Box::new(self.expr(d)?), Box::new(self.expr(d)?))
            }
            8 => {
                let op = match self.u8()? {
                    0 => ArithOp::Add,
                    1 => ArithOp::Sub,
                    2 => ArithOp::Mul,
                    3 => ArithOp::Div,
                    _ => return Err(PlanDecodeError::Malformed("bad arith op")),
                };
                Expr::Arith(op, Box::new(self.expr(d)?), Box::new(self.expr(d)?))
            }
            9 => Expr::IsNull(Box::new(self.expr(d)?), self.bool()?),
            10 => Expr::IsDirected(self.str()?),
            11 => Expr::IsSourceOf {
                node: self.str()?,
                edge: self.str()?,
            },
            12 => Expr::IsDestinationOf {
                node: self.str()?,
                edge: self.str()?,
            },
            13 => Expr::Same(self.strings()?),
            14 => Expr::AllDifferent(self.strings()?),
            15 => {
                let func = match self.u8()? {
                    0 => AggFunc::Count,
                    1 => AggFunc::Sum,
                    2 => AggFunc::Avg,
                    3 => AggFunc::Min,
                    4 => AggFunc::Max,
                    _ => return Err(PlanDecodeError::Malformed("bad aggregate func")),
                };
                let arg = match self.u8()? {
                    0 => AggArg::Var(self.str()?),
                    1 => AggArg::VarStar(self.str()?),
                    2 => AggArg::Property(self.str()?, self.str()?),
                    _ => return Err(PlanDecodeError::Malformed("bad aggregate arg")),
                };
                Expr::Aggregate {
                    func,
                    arg,
                    distinct: self.bool()?,
                }
            }
            16 => Expr::Exists(Box::new(self.graph_pattern(d)?)),
            _ => return Err(PlanDecodeError::Malformed("bad expr tag")),
        })
    }

    fn restrictor(&mut self) -> DecodeResult<Restrictor> {
        Ok(match self.u8()? {
            0 => Restrictor::Trail,
            1 => Restrictor::Acyclic,
            2 => Restrictor::Simple,
            _ => return Err(PlanDecodeError::Malformed("bad restrictor")),
        })
    }

    fn direction(&mut self) -> DecodeResult<Direction> {
        Ok(match self.u8()? {
            0 => Direction::Left,
            1 => Direction::Undirected,
            2 => Direction::Right,
            3 => Direction::LeftOrUndirected,
            4 => Direction::UndirectedOrRight,
            5 => Direction::LeftOrRight,
            6 => Direction::Any,
            _ => return Err(PlanDecodeError::Malformed("bad direction")),
        })
    }

    fn selector(&mut self) -> DecodeResult<Selector> {
        Ok(match self.u8()? {
            0 => Selector::AnyShortest,
            1 => Selector::AllShortest,
            2 => Selector::Any,
            3 => Selector::AnyK(self.u32()?),
            4 => Selector::ShortestK(self.u32()?),
            5 => Selector::ShortestKGroup(self.u32()?),
            6 => Selector::AnyCheapest {
                weight: self.str()?,
            },
            7 => Selector::CheapestK {
                k: self.u32()?,
                weight: self.str()?,
            },
            _ => return Err(PlanDecodeError::Malformed("bad selector")),
        })
    }

    fn node_pat(&mut self, depth: u32) -> DecodeResult<NodePattern> {
        Ok(NodePattern {
            var: self.opt(|r| r.str())?,
            label: self.opt(|r| r.label(depth))?,
            predicate: self.opt(|r| r.expr(depth))?,
        })
    }

    fn edge_pat(&mut self, depth: u32) -> DecodeResult<EdgePattern> {
        Ok(EdgePattern {
            var: self.opt(|r| r.str())?,
            label: self.opt(|r| r.label(depth))?,
            predicate: self.opt(|r| r.expr(depth))?,
            direction: self.direction()?,
        })
    }

    fn path_pattern(&mut self, depth: u32) -> DecodeResult<PathPattern> {
        if depth > MAX_DECODE_DEPTH {
            return Err(PlanDecodeError::Malformed("nesting too deep"));
        }
        let d = depth + 1;
        Ok(match self.u8()? {
            0 => PathPattern::Node(self.node_pat(d)?),
            1 => PathPattern::Edge(self.edge_pat(d)?),
            2 => {
                let n = self.u32()? as usize;
                let mut parts = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    parts.push(self.path_pattern(d)?);
                }
                PathPattern::Concat(parts)
            }
            3 => PathPattern::Paren {
                restrictor: self.opt(|r| r.restrictor())?,
                inner: Box::new(self.path_pattern(d)?),
                predicate: self.opt(|r| r.expr(d))?,
            },
            4 => PathPattern::Quantified {
                inner: Box::new(self.path_pattern(d)?),
                quantifier: Quantifier {
                    min: self.u32()?,
                    max: self.opt(|r| r.u32())?,
                },
            },
            5 => PathPattern::Questioned(Box::new(self.path_pattern(d)?)),
            6 => {
                let n = self.u32()? as usize;
                let mut bs = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    bs.push(self.path_pattern(d)?);
                }
                PathPattern::Union(bs)
            }
            7 => {
                let n = self.u32()? as usize;
                let mut bs = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    bs.push(self.path_pattern(d)?);
                }
                PathPattern::Alternation(bs)
            }
            _ => return Err(PlanDecodeError::Malformed("bad path-pattern tag")),
        })
    }

    fn graph_pattern(&mut self, depth: u32) -> DecodeResult<GraphPattern> {
        if depth > MAX_DECODE_DEPTH {
            return Err(PlanDecodeError::Malformed("nesting too deep"));
        }
        let d = depth + 1;
        let n = self.u32()? as usize;
        let mut paths = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            paths.push(PathPatternExpr {
                selector: self.opt(|r| r.selector())?,
                restrictor: self.opt(|r| r.restrictor())?,
                path_var: self.opt(|r| r.str())?,
                pattern: self.path_pattern(d)?,
            });
        }
        Ok(GraphPattern {
            paths,
            where_clause: self.opt(|r| r.expr(d))?,
        })
    }
}

impl FlatProgram {
    /// Serializes the program into the versioned, checksummed binary
    /// format described in the module docs.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut payload = Vec::with_capacity(64 + self.instrs.len() * 10);
        put_u32(&mut payload, self.start);
        put_u32(&mut payload, self.accept);
        put_u32(&mut payload, self.instrs.len() as u32);
        for ins in &self.instrs {
            put_u8(&mut payload, ins.op as u8);
            put_bool(&mut payload, ins.last);
            put_u32(&mut payload, ins.arg);
            put_u32(&mut payload, ins.target);
        }
        put_u32(&mut payload, self.node_pats.len() as u32);
        for np in &self.node_pats {
            put_node_pat(&mut payload, np);
        }
        put_u32(&mut payload, self.edge_pats.len() as u32);
        for ep in &self.edge_pats {
            put_edge_pat(&mut payload, ep);
        }
        put_u32(&mut payload, self.quants.len() as u32);
        for q in &self.quants {
            put_u32(&mut payload, q.min);
            put_opt(&mut payload, &q.max, |o, m| put_u32(o, *m));
            put_bool(&mut payload, q.expose_conditional);
            put_u32(&mut payload, q.body_vars.len() as u32);
            for (v, is_edge) in &q.body_vars {
                put_str(&mut payload, v);
                put_bool(&mut payload, *is_edge);
            }
        }
        put_u32(&mut payload, self.parens.len() as u32);
        for p in &self.parens {
            put_opt(&mut payload, &p.restrictor, put_restrictor);
            put_opt(&mut payload, &p.predicate, put_expr);
        }

        let mut out = Vec::with_capacity(16 + payload.len());
        out.extend_from_slice(MAGIC);
        put_u32(&mut out, PLAN_FORMAT_VERSION);
        put_u64(&mut out, fnv1a(&payload));
        out.extend_from_slice(&payload);
        out
    }

    /// Decodes a buffer produced by [`FlatProgram::to_bytes`], verifying
    /// magic, version, checksum, and every instruction's operand and
    /// target bounds. Round-tripping is structural equality, and a
    /// decoded program executes identically to the original.
    pub fn from_bytes(bytes: &[u8]) -> DecodeResult<FlatProgram> {
        if bytes.len() < 16 {
            return Err(if bytes.len() < 4 || &bytes[..4] != MAGIC {
                PlanDecodeError::BadMagic
            } else {
                PlanDecodeError::Malformed("truncated header")
            });
        }
        if &bytes[..4] != MAGIC {
            return Err(PlanDecodeError::BadMagic);
        }
        let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4"));
        if version != PLAN_FORMAT_VERSION {
            return Err(PlanDecodeError::WrongVersion(version));
        }
        let checksum = u64::from_le_bytes(bytes[8..16].try_into().expect("8"));
        let payload = &bytes[16..];
        if fnv1a(payload) != checksum {
            return Err(PlanDecodeError::BadChecksum);
        }

        let mut r = Reader {
            buf: payload,
            pos: 0,
        };
        let start = r.u32()?;
        let accept = r.u32()?;
        let n_instrs = r.u32()? as usize;
        let mut instrs = Vec::with_capacity(n_instrs.min(1 << 16));
        for _ in 0..n_instrs {
            let op = Op::from_u8(r.u8()?).ok_or(PlanDecodeError::Malformed("bad opcode"))?;
            instrs.push(Instr {
                op,
                last: r.bool()?,
                arg: r.u32()?,
                target: r.u32()?,
            });
        }
        let n = r.u32()? as usize;
        let mut node_pats = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            node_pats.push(r.node_pat(0)?);
        }
        let n = r.u32()? as usize;
        let mut edge_pats = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            edge_pats.push(r.edge_pat(0)?);
        }
        let n = r.u32()? as usize;
        let mut quants = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            let min = r.u32()?;
            let max = r.opt(|x| x.u32())?;
            let expose_conditional = r.bool()?;
            let nb = r.u32()? as usize;
            let mut body_vars = Vec::with_capacity(nb.min(1024));
            for _ in 0..nb {
                body_vars.push((r.str()?, r.bool()?));
            }
            quants.push(QuantMeta {
                min,
                max,
                expose_conditional,
                body_vars,
            });
        }
        let n = r.u32()? as usize;
        let mut parens = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            parens.push(ParenMeta {
                restrictor: r.opt(|x| x.restrictor())?,
                predicate: r.opt(|x| x.expr(0))?,
            });
        }
        if r.pos != r.buf.len() {
            return Err(PlanDecodeError::Malformed("trailing bytes"));
        }

        // Structural validation: the interpreter indexes instrs and the
        // operand tables unchecked in its hot loop, so reject anything
        // out of bounds (or an unterminated final block) here.
        let len = instrs.len() as u32;
        if len == 0 {
            return Err(PlanDecodeError::Malformed("empty program"));
        }
        if !instrs[len as usize - 1].last {
            return Err(PlanDecodeError::Malformed("unterminated final block"));
        }
        if start >= len || accept >= len {
            return Err(PlanDecodeError::Malformed("entry point out of bounds"));
        }
        for ins in &instrs {
            if ins.target >= len {
                return Err(PlanDecodeError::Malformed("jump target out of bounds"));
            }
            let table_len = match ins.op {
                Op::NodeTest => node_pats.len(),
                Op::Consume => edge_pats.len(),
                Op::OpenParen | Op::CloseParen => parens.len(),
                Op::EnterQuant | Op::IterStart | Op::IterEnd | Op::ExitQuant => quants.len(),
                Op::Jump | Op::AltMark | Op::Halt => usize::MAX,
            };
            if table_len != usize::MAX && ins.arg as usize >= table_len {
                return Err(PlanDecodeError::Malformed("operand index out of bounds"));
            }
        }
        Ok(FlatProgram {
            instrs,
            start,
            accept,
            node_pats,
            edge_pats,
            quants,
            parens,
        })
    }
}

// ---------------------------------------------------------------------------
// Structural keys
// ---------------------------------------------------------------------------

/// Interns variable names to dense ids so visited/prune keys are flat
/// `Vec<u64>`s instead of formatted strings. Ids are only compared within
/// one matcher run, so first-use assignment is fine.
struct KeyInterner {
    ids: RefCell<HashMap<String, u64>>,
}

impl KeyInterner {
    fn new() -> KeyInterner {
        KeyInterner {
            ids: RefCell::new(HashMap::new()),
        }
    }

    fn id(&self, name: &str) -> u64 {
        let mut ids = self.ids.borrow_mut();
        if let Some(&i) = ids.get(name) {
            return i;
        }
        let i = ids.len() as u64;
        ids.insert(name.to_owned(), i);
        i
    }
}

/// Appends a self-delimiting (tag + length-prefixed) encoding of a bound
/// value, injective so two distinct values never collide.
fn push_value(out: &mut Vec<u64>, v: &BoundValue) {
    match v {
        BoundValue::Node(n) => {
            out.push(0);
            out.push(n.0 as u64);
        }
        BoundValue::Edge(e) => {
            out.push(1);
            out.push(e.0 as u64);
        }
        BoundValue::NodeGroup(g) => {
            out.push(2);
            out.push(g.len() as u64);
            out.extend(g.iter().map(|n| n.0 as u64));
        }
        BoundValue::EdgeGroup(g) => {
            out.push(3);
            out.push(g.len() as u64);
            out.extend(g.iter().map(|e| e.0 as u64));
        }
        BoundValue::Path(p) => {
            out.push(4);
            out.push(p.nodes().len() as u64);
            out.extend(p.nodes().iter().map(|n| n.0 as u64));
            out.push(p.edges().len() as u64);
            out.extend(p.edges().iter().map(|e| e.0 as u64));
        }
    }
}

// ---------------------------------------------------------------------------
// The undo trail
// ---------------------------------------------------------------------------

/// One reversible mutation of the working [`RunState`]. Backtracking pops
/// trail entries (most recent first) down to a watermark, restoring the
/// state exactly as it was when that watermark was taken.
enum Undo {
    /// An alternation mark was pushed.
    AltMark,
    /// A prefilter was deferred.
    Deferred,
    /// A completed restrictor span was recorded (deferred ablation).
    Span,
    /// A restrictor scope was opened.
    ScopePushed,
    /// A restrictor scope was closed; restore it.
    ScopePopped(Scope),
    /// A loop counter was pushed.
    LoopPushed,
    /// A loop counter was popped; restore it.
    LoopPopped(Loop),
    /// The innermost loop counter was bumped; restore the old values.
    LoopCounts { count: u32, stalled: bool },
    /// An iteration frame was pushed.
    FramePushed,
    /// An iteration frame was popped; restore it. MUST precede the merge
    /// effects of the same `IterEnd` on the trail, so that undoing (in
    /// reverse) reverts the merges while the frame is still popped — the
    /// merge target (innermost remaining frame or globals) is then the
    /// same map the merge actually mutated.
    FramePopped(Frame),
    /// A fresh binding was inserted into globals or the innermost frame.
    Inserted { var: String, global: bool },
    /// A group binding was extended; truncate it back to `old_len`.
    ///
    /// Recorded even for merges that *rejected* (a rejected merge may
    /// still have inserted an empty group first); the undo is defensive
    /// and only truncates if the entry really is a group.
    Extended {
        var: String,
        global: bool,
        old_len: usize,
    },
}

fn undo_to(work: &mut RunState, trail: &mut Vec<Undo>, mark: usize) {
    while trail.len() > mark {
        match trail.pop().expect("trail is longer than mark") {
            Undo::AltMark => {
                work.alt_marks.pop();
            }
            Undo::Deferred => {
                work.deferred.pop();
            }
            Undo::Span => {
                work.spans.pop();
            }
            Undo::ScopePushed => {
                work.scopes.pop();
            }
            Undo::ScopePopped(s) => work.scopes.push(s),
            Undo::LoopPushed => {
                work.loops.pop();
            }
            Undo::LoopPopped(l) => work.loops.push(l),
            Undo::LoopCounts { count, stalled } => {
                let l = work.loops.last_mut().expect("loop for undo");
                l.count = count;
                l.stalled = stalled;
            }
            Undo::FramePushed => {
                work.frames.pop();
            }
            Undo::FramePopped(f) => work.frames.push(f),
            Undo::Inserted { var, global } => {
                let target = if global {
                    &mut work.globals
                } else {
                    &mut work.frames.last_mut().expect("frame for undo").locals
                };
                target.remove(&var);
            }
            Undo::Extended {
                var,
                global,
                old_len,
            } => {
                let target = if global {
                    &mut work.globals
                } else {
                    &mut work.frames.last_mut().expect("frame for undo").locals
                };
                match target.get_mut(&var) {
                    Some(BoundValue::NodeGroup(g)) => g.truncate(old_len),
                    Some(BoundValue::EdgeGroup(g)) => g.truncate(old_len),
                    _ => {}
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// The interpreter
// ---------------------------------------------------------------------------

/// The flat-program interpreter: the drop-in replacement for
/// [`matcher::Matcher`] used when [`EvalOptions::flat`] is on. Takes the
/// same search decisions in the same order as the legacy engine (shared
/// step/finalize logic, structurally-equal visited and prune keys) so
/// results match bit-for-bit.
pub(crate) struct FlatMatcher<'a> {
    graph: &'a PropertyGraph,
    prog: &'a FlatProgram,
    opts: &'a EvalOptions,
    params: &'a Params,
    path_restrictor: Option<Restrictor>,
    prune: PruneMode,
    max_edges: usize,
    defer: bool,
    filters: Option<&'a SemiJoinFilters>,
    interner: KeyInterner,
    nodes_expanded: Cell<u64>,
    edges_traversed: Cell<u64>,
    rows_pruned: Cell<u64>,
    instrs_dispatched: Cell<u64>,
    backtrack_truncations: Cell<u64>,
}

impl<'a> FlatMatcher<'a> {
    /// Builds an interpreter over a lowered program; mirrors
    /// [`matcher::Matcher::over`].
    pub(crate) fn over(
        graph: &'a PropertyGraph,
        prog: &'a FlatProgram,
        pattern: &PathPattern,
        path_restrictor: Option<Restrictor>,
        prune: PruneMode,
        opts: &'a EvalOptions,
        params: &'a Params,
    ) -> FlatMatcher<'a> {
        let static_cap = matcher::static_edge_bound(pattern, graph, path_restrictor);
        let max_edges = static_cap.min(opts.max_path_length);
        let defer = opts.defer_restrictors;
        FlatMatcher {
            graph,
            prog,
            opts,
            params,
            path_restrictor,
            prune,
            max_edges,
            defer,
            filters: None,
            interner: KeyInterner::new(),
            nodes_expanded: Cell::new(0),
            edges_traversed: Cell::new(0),
            rows_pruned: Cell::new(0),
            instrs_dispatched: Cell::new(0),
            backtrack_truncations: Cell::new(0),
        }
    }

    /// Installs semi-join endpoint filters; mirrors
    /// [`matcher::Matcher::with_filters`].
    pub(crate) fn with_filters(mut self, filters: &'a SemiJoinFilters) -> FlatMatcher<'a> {
        self.filters = Some(filters);
        self
    }

    /// Adds this interpreter's search tallies into `counters` and resets
    /// them.
    pub(crate) fn flush_counters(&self, counters: &StageCounters) {
        counters.add(
            self.nodes_expanded.take(),
            self.edges_traversed.take(),
            self.rows_pruned.take(),
            self.instrs_dispatched.take(),
            self.backtrack_truncations.take(),
        );
    }

    /// Runs the search seeded only from `starts`; the flat counterpart of
    /// [`matcher::Matcher::run_from`], with identical partitioning and
    /// resource-limit semantics.
    pub(crate) fn run_from(&self, starts: &[NodeId]) -> Result<Vec<PathBinding>> {
        let mut results: Vec<PathBinding> = Vec::new();
        let mut queue: VecDeque<RunState> = VecDeque::new();
        let mut seen: HashMap<Vec<u64>, BTreeSet<usize>> = HashMap::new();

        for &n in starts {
            let mut init = RunState {
                at: self.prog.start as usize,
                path: Path::single(n),
                globals: BTreeMap::new(),
                frames: Vec::new(),
                scopes: Vec::new(),
                loops: Vec::new(),
                alt_marks: Vec::new(),
                deferred: Vec::new(),
                spans: Vec::new(),
            };
            if let Some(r) = self.path_restrictor {
                init.scopes.push(Scope {
                    paren: usize::MAX,
                    restrictor: r,
                    node_start: 0,
                    edge_start: 0,
                    closed: false,
                });
            }
            self.closure(init, &mut queue, &mut results, &mut seen)?;
        }

        while let Some(state) = queue.pop_front() {
            self.nodes_expanded.set(self.nodes_expanded.get() + 1);
            if state.path.len() >= self.max_edges {
                continue;
            }
            // Linear scan of the state's block for its Consume entries —
            // the flat replacement for the per-state edge vector.
            let mut pc = state.at;
            loop {
                let ins = self.prog.instrs[pc];
                if ins.op == Op::Consume {
                    let ep = &self.prog.edge_pats[ins.arg as usize];
                    let cur = state.current();
                    for step in self.graph.steps(cur) {
                        self.edges_traversed.set(self.edges_traversed.get() + 1);
                        if let Some(next) = matcher::try_step(
                            self.graph,
                            self.params,
                            self.defer,
                            &state,
                            ins.target as usize,
                            ep,
                            *step,
                        ) {
                            self.closure(next, &mut queue, &mut results, &mut seen)?;
                        }
                    }
                }
                if ins.last {
                    break;
                }
                pc += 1;
            }
            if results.len() > self.opts.max_matches {
                return Err(Error::LimitExceeded {
                    what: "matches",
                    limit: self.opts.max_matches,
                });
            }
        }
        Ok(results)
    }

    /// ε-closure over the flat program: one working state, an undo
    /// trail, and a DFS stack of bare `(pc, trail watermark)` pairs.
    /// Backtracking is watermark truncation of the trail instead of the
    /// legacy engine's clone-per-transition.
    fn closure(
        &self,
        seed: RunState,
        queue: &mut VecDeque<RunState>,
        results: &mut Vec<PathBinding>,
        seen: &mut HashMap<Vec<u64>, BTreeSet<usize>>,
    ) -> Result<()> {
        let mut work = seed;
        let mut trail: Vec<Undo> = Vec::new();
        let mut stack: Vec<(u32, u32)> = Vec::new();
        let mut visited: HashSet<Vec<u64>> = HashSet::new();

        self.visit(&work, 0, &mut stack, &mut visited, queue, results, seen)?;
        while let Some((pc, mark)) = stack.pop() {
            if trail.len() > mark as usize {
                self.backtrack_truncations
                    .set(self.backtrack_truncations.get() + 1);
                undo_to(&mut work, &mut trail, mark as usize);
            }
            let ins = self.prog.instrs[pc as usize];
            if self.apply(&mut work, &mut trail, ins) {
                work.at = ins.target as usize;
                let wm = trail.len() as u32;
                self.visit(&work, wm, &mut stack, &mut visited, queue, results, seen)?;
            }
        }
        Ok(())
    }

    /// Processes a newly reached configuration: dedup on the visited key,
    /// record accepts, push the block's ε-instructions (applied lazily at
    /// pop), and enqueue a frontier snapshot if the block can consume.
    #[allow(clippy::too_many_arguments)]
    fn visit(
        &self,
        work: &RunState,
        watermark: u32,
        stack: &mut Vec<(u32, u32)>,
        visited: &mut HashSet<Vec<u64>>,
        queue: &mut VecDeque<RunState>,
        results: &mut Vec<PathBinding>,
        seen: &mut HashMap<Vec<u64>, BTreeSet<usize>>,
    ) -> Result<()> {
        if !visited.insert(self.vkey(work)) {
            return Ok(());
        }
        if work.at == self.prog.accept as usize {
            if let Some(b) = matcher::finalize(self.graph, self.params, self.defer, work) {
                results.push(b);
            }
        }
        let mut pc = work.at;
        let mut has_consume = false;
        loop {
            let ins = self.prog.instrs[pc];
            self.instrs_dispatched.set(self.instrs_dispatched.get() + 1);
            match ins.op {
                Op::Consume => has_consume = true,
                Op::Halt => {}
                _ => stack.push((pc as u32, watermark)),
            }
            if ins.last {
                break;
            }
            pc += 1;
        }
        if has_consume {
            self.enqueue(work.clone(), queue, seen)?;
        }
        Ok(())
    }

    /// Applies one ε-instruction to the working state in place, recording
    /// undo entries. Returns false when the transition rejects; any
    /// partial mutations stay on the trail for the next backtrack.
    fn apply(&self, work: &mut RunState, trail: &mut Vec<Undo>, ins: Instr) -> bool {
        let arg = ins.arg as usize;
        match ins.op {
            Op::Jump => true,
            Op::AltMark => {
                work.alt_marks.push(ins.arg);
                trail.push(Undo::AltMark);
                true
            }
            Op::NodeTest => {
                let np = &self.prog.node_pats[arg];
                let n = work.current();
                if let Some(l) = &np.label {
                    if !l.matches(&self.graph.node(n).labels) {
                        return false;
                    }
                }
                if let Some(v) = &np.var {
                    // The semi-join endpoint check: a node outside the
                    // accumulated key set can never survive the join.
                    if let Some(allowed) = self.filters.and_then(|f| f.get(v)) {
                        if !allowed.contains(&n) {
                            self.rows_pruned.set(self.rows_pruned.get() + 1);
                            return false;
                        }
                    }
                    match work.bind_where(v, BoundValue::Node(n)) {
                        None => return false,
                        Some(BindSite::Existing) => {}
                        Some(site) => trail.push(Undo::Inserted {
                            var: v.clone(),
                            global: site == BindSite::Globals,
                        }),
                    }
                }
                if let Some(pred) = &np.predicate {
                    if !self.prefilter(work, trail, pred) {
                        return false;
                    }
                }
                true
            }
            Op::OpenParen => {
                if let Some(r) = self.prog.parens[arg].restrictor {
                    work.scopes.push(Scope {
                        paren: arg,
                        restrictor: r,
                        node_start: work.path.nodes().len() - 1,
                        edge_start: work.path.edges().len(),
                        closed: false,
                    });
                    trail.push(Undo::ScopePushed);
                }
                true
            }
            Op::CloseParen => {
                if let Some(pred) = &self.prog.parens[arg].predicate {
                    if !self.prefilter(work, trail, pred) {
                        return false;
                    }
                }
                if work.scopes.last().is_some_and(|s| s.paren == arg) {
                    let scope = work.scopes.pop().expect("just checked");
                    trail.push(Undo::ScopePopped(scope.clone()));
                    if self.defer {
                        work.spans.push((
                            scope.restrictor,
                            scope.node_start,
                            work.path.nodes().len() - 1,
                        ));
                        trail.push(Undo::Span);
                    }
                }
                true
            }
            Op::EnterQuant => {
                work.loops.push(Loop {
                    qid: arg,
                    count: 0,
                    stalled: false,
                });
                trail.push(Undo::LoopPushed);
                true
            }
            Op::IterStart => {
                let q = &self.prog.quants[arg];
                let Some(l) = work.loops.last() else {
                    return false;
                };
                debug_assert_eq!(l.qid, arg);
                if let Some(max) = q.max {
                    if l.count >= max {
                        return false;
                    }
                }
                if l.stalled && l.count >= q.min {
                    return false;
                }
                work.frames.push(Frame {
                    qid: arg,
                    locals: BTreeMap::new(),
                    edges_at_start: work.path.len(),
                });
                trail.push(Undo::FramePushed);
                true
            }
            Op::IterEnd => {
                let q = &self.prog.quants[arg];
                let Some(frame) = work.frames.pop() else {
                    return false;
                };
                debug_assert_eq!(frame.qid, arg);
                // The frame-restore entry goes on the trail FIRST: undoing
                // runs in reverse, so the merges below are reverted while
                // the frame is still popped (see [`Undo::FramePopped`]).
                trail.push(Undo::FramePopped(frame.clone()));
                let progressed = work.path.len() > frame.edges_at_start;
                for (var, val) in frame.locals {
                    let (effect, ok) =
                        matcher::merge_binding_traced(work, &var, val, q.expose_conditional);
                    match effect {
                        MergeEffect::None => {}
                        MergeEffect::Inserted { global } => {
                            trail.push(Undo::Inserted { var, global })
                        }
                        MergeEffect::Extended { global, old_len } => trail.push(Undo::Extended {
                            var,
                            global,
                            old_len,
                        }),
                    }
                    if !ok {
                        return false;
                    }
                }
                let Some(l) = work.loops.last_mut() else {
                    return false;
                };
                trail.push(Undo::LoopCounts {
                    count: l.count,
                    stalled: l.stalled,
                });
                l.count += 1;
                if !progressed {
                    l.stalled = true;
                }
                true
            }
            Op::ExitQuant => {
                let q = &self.prog.quants[arg];
                let Some(l) = work.loops.pop() else {
                    return false;
                };
                debug_assert_eq!(l.qid, arg);
                let count = l.count;
                trail.push(Undo::LoopPopped(l));
                if count < q.min {
                    return false;
                }
                if !q.expose_conditional {
                    for (var, is_edge) in &q.body_vars {
                        if work.lookup(var).is_none() {
                            let empty = if *is_edge {
                                BoundValue::EdgeGroup(Vec::new())
                            } else {
                                BoundValue::NodeGroup(Vec::new())
                            };
                            match work.bind_where(var, empty) {
                                None => return false,
                                Some(BindSite::Existing) => {}
                                Some(site) => trail.push(Undo::Inserted {
                                    var: var.clone(),
                                    global: site == BindSite::Globals,
                                }),
                            }
                        }
                    }
                }
                true
            }
            Op::Consume | Op::Halt => unreachable!("not an ε-instruction"),
        }
    }

    /// Prefilter evaluation with trail bookkeeping for a deferral.
    fn prefilter(&self, work: &mut RunState, trail: &mut Vec<Undo>, pred: &Expr) -> bool {
        let before = work.deferred.len();
        let ok = matcher::check_prefilter(self.graph, self.params, work, pred);
        if work.deferred.len() > before {
            trail.push(Undo::Deferred);
        }
        ok
    }

    /// Frontier admission; mirrors the legacy engine's dominance pruning
    /// and frontier limit exactly, over structural keys.
    fn enqueue(
        &self,
        state: RunState,
        queue: &mut VecDeque<RunState>,
        seen: &mut HashMap<Vec<u64>, BTreeSet<usize>>,
    ) -> Result<()> {
        if let PruneMode::ShortestGroups(k) = self.prune {
            // Pruning is only sound for states without live restrictor
            // scopes (scope memory affects future matchability).
            if state.scopes.is_empty() {
                let key = self.prune_key(&state);
                let lengths = seen.entry(key).or_default();
                let len = state.path.len();
                let shorter = lengths.range(..len).count();
                if shorter >= k {
                    return Ok(());
                }
                lengths.insert(len);
            }
        }
        if queue.len() >= self.opts.max_frontier {
            return Err(Error::LimitExceeded {
                what: "frontier states",
                limit: self.opts.max_frontier,
            });
        }
        queue.push_back(state);
        Ok(())
    }

    /// The ε-closure visited key: a flat structural encoding of the same
    /// fields the legacy engine formats into its cycle-protection string,
    /// injective so equality classes coincide.
    fn vkey(&self, s: &RunState) -> Vec<u64> {
        let mut k = Vec::with_capacity(16);
        k.push(s.at as u64);
        k.push(s.loops.len() as u64);
        for l in &s.loops {
            k.push(l.qid as u64);
            k.push(l.count as u64);
            k.push(l.stalled as u64);
        }
        k.push(s.frames.len() as u64);
        for f in &s.frames {
            k.push(f.qid as u64);
            k.push(f.edges_at_start as u64);
            k.push(f.locals.len() as u64);
            for (v, val) in &f.locals {
                k.push(self.interner.id(v));
                push_value(&mut k, val);
            }
        }
        k.push(s.globals.len() as u64);
        for (v, val) in &s.globals {
            k.push(self.interner.id(v));
            push_value(&mut k, val);
        }
        k.push(s.scopes.len() as u64);
        k.push(s.alt_marks.len() as u64);
        k.extend(s.alt_marks.iter().map(|&m| m as u64));
        k.push(s.deferred.len() as u64);
        k.push(s.spans.len() as u64);
        k
    }

    /// The dominance-pruning key: the structural counterpart of
    /// [`RunState::prune_key`] — same fields (capped loop counters,
    /// non-group globals, frame locals), same equality classes.
    fn prune_key(&self, s: &RunState) -> Vec<u64> {
        let mut k = Vec::with_capacity(16);
        k.push(s.at as u64);
        k.push(s.path.start().0 as u64);
        k.push(s.current().0 as u64);
        k.push(s.loops.len() as u64);
        for l in &s.loops {
            let q = &self.prog.quants[l.qid];
            let cap = q.max.unwrap_or(q.min);
            k.push(l.qid as u64);
            k.push(l.count.min(cap) as u64);
            k.push(l.stalled as u64);
        }
        let non_group = s
            .globals
            .iter()
            .filter(|(_, v)| !matches!(v, BoundValue::NodeGroup(_) | BoundValue::EdgeGroup(_)));
        k.push(non_group.clone().count() as u64);
        for (v, val) in non_group {
            k.push(self.interner.id(v));
            push_value(&mut k, val);
        }
        k.push(s.frames.len() as u64);
        for f in &s.frames {
            k.push(f.qid as u64);
            k.push(f.locals.len() as u64);
            for (v, val) in &f.locals {
                k.push(self.interner.id(v));
                push_value(&mut k, val);
            }
        }
        k.push(s.alt_marks.len() as u64);
        k.extend(s.alt_marks.iter().map(|&m| m as u64));
        k.push(s.deferred.len() as u64);
        k
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::matcher::compile;
    use crate::normalize::normalize;

    fn program_for(pattern: PathPattern) -> FlatProgram {
        let normalized = normalize(&GraphPattern::single(pattern));
        FlatProgram::from_nfa(&compile(&normalized.paths[0].pattern))
    }

    fn sample_pattern() -> PathPattern {
        // (x:Account WHERE x.owner = 'Ada') (-[t:Transfer]-> (y)){1,3}
        PathPattern::Concat(vec![
            PathPattern::Node(
                NodePattern::var("x")
                    .with_label(LabelExpr::label("Account"))
                    .with_predicate(Expr::prop("x", "owner").eq(Expr::lit("Ada"))),
            ),
            PathPattern::Quantified {
                inner: Box::new(PathPattern::Concat(vec![
                    PathPattern::Edge(
                        EdgePattern::any(Direction::Right)
                            .with_var("t")
                            .with_label(LabelExpr::label("Transfer")),
                    ),
                    PathPattern::Node(NodePattern::var("y")),
                ])),
                quantifier: Quantifier {
                    min: 1,
                    max: Some(3),
                },
            },
        ])
    }

    #[test]
    fn lowering_emits_one_block_per_state() {
        let prog = program_for(sample_pattern());
        assert!(prog.instr_count() > 0);
        // Every block is terminated and every target is a valid pc.
        assert!(prog.instrs.last().expect("non-empty").last);
        for ins in &prog.instrs {
            assert!((ins.target as usize) < prog.instrs.len());
        }
    }

    #[test]
    fn round_trip_is_structural_equality() {
        let prog = program_for(sample_pattern());
        let bytes = prog.to_bytes();
        assert_eq!(bytes.len(), prog.encoded_len());
        let back = FlatProgram::from_bytes(&bytes).expect("round trip");
        assert_eq!(prog, back);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = program_for(sample_pattern()).to_bytes();
        bytes[0] = b'X';
        assert_eq!(
            FlatProgram::from_bytes(&bytes),
            Err(PlanDecodeError::BadMagic)
        );
    }

    #[test]
    fn wrong_version_is_rejected() {
        let mut bytes = program_for(sample_pattern()).to_bytes();
        bytes[4..8].copy_from_slice(&99u32.to_le_bytes());
        assert_eq!(
            FlatProgram::from_bytes(&bytes),
            Err(PlanDecodeError::WrongVersion(99))
        );
    }

    #[test]
    fn corruption_is_rejected_by_checksum() {
        let mut bytes = program_for(sample_pattern()).to_bytes();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        assert_eq!(
            FlatProgram::from_bytes(&bytes),
            Err(PlanDecodeError::BadChecksum)
        );
    }

    #[test]
    fn truncation_is_rejected() {
        let bytes = program_for(sample_pattern()).to_bytes();
        for cut in [0, 3, 8, 15, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                FlatProgram::from_bytes(&bytes[..cut]).is_err(),
                "cut at {cut} must not decode"
            );
        }
    }

    #[test]
    fn disassembly_names_opcodes_and_tests() {
        let prog = program_for(sample_pattern());
        let dis = prog.to_string();
        assert!(dis.contains("ntest"), "disassembly: {dis}");
        assert!(dis.contains("step"), "disassembly: {dis}");
        assert!(dis.contains("Transfer"), "disassembly: {dis}");
    }
}
