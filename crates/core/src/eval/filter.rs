//! Expression evaluation under SQL-style three-valued logic.
//!
//! A predicate keeps a match only when it evaluates to *definitely true*.
//! Accessing a property an element lacks — or any property of an unbound
//! conditional singleton — yields `NULL`; comparisons involving `NULL` are
//! *unknown*; `AND`/`OR`/`NOT` follow Kleene logic. This is what makes the
//! §4.6 question-mark example behave as the paper describes: when the
//! optional pattern part does not match, `p.isBlocked='yes'` is unknown,
//! so the other disjunct must hold.

use property_graph::{ElementId, PropertyGraph, Value};

use crate::ast::{AggArg, AggFunc, ArithOp, CmpOp, Expr, GraphPattern};
use crate::binding::BoundValue;

/// A variable-lookup environment: the matcher supplies its frame stack,
/// the post-filter supplies the joined row.
pub trait Env {
    /// The binding of `var`, if any.
    fn lookup(&self, var: &str) -> Option<BoundValue>;

    /// Evaluates an `EXISTS { pattern }` subquery relative to this
    /// environment. The default (`None` = unknown) is used by contexts
    /// that cannot run subqueries — static analysis restricts `EXISTS`
    /// to the final `WHERE`, whose environment overrides this.
    fn exists(&self, pattern: &GraphPattern) -> Option<bool> {
        let _ = pattern;
        None
    }

    /// The value bound to the `$name` query parameter, if any. The
    /// default (`None`, evaluating to `NULL` → *unknown*) is used by
    /// environments without parameter support; execution environments of
    /// parameterized plans override it with the caller's
    /// [`Params`](crate::Params) — which bind-time validation has already
    /// checked for completeness, so a `None` never reaches a filter
    /// through the plan executor.
    fn param(&self, name: &str) -> Option<Value> {
        let _ = name;
        None
    }
}

impl<F> Env for F
where
    F: Fn(&str) -> Option<BoundValue>,
{
    fn lookup(&self, var: &str) -> Option<BoundValue> {
        self(var)
    }
}

/// Three-valued truth of `expr` under `env`: `Some(true)`, `Some(false)`,
/// or `None` for *unknown*.
pub fn truth(graph: &PropertyGraph, env: &dyn Env, expr: &Expr) -> Option<bool> {
    match expr {
        Expr::Not(e) => truth(graph, env, e).map(|b| !b),
        Expr::And(a, b) => match (truth(graph, env, a), truth(graph, env, b)) {
            (Some(false), _) | (_, Some(false)) => Some(false),
            (Some(true), Some(true)) => Some(true),
            _ => None,
        },
        Expr::Or(a, b) => match (truth(graph, env, a), truth(graph, env, b)) {
            (Some(true), _) | (_, Some(true)) => Some(true),
            (Some(false), Some(false)) => Some(false),
            _ => None,
        },
        Expr::Cmp(op, a, b) => cmp(graph, env, *op, a, b),
        Expr::IsNull(e, want_null) => {
            let v = eval(graph, env, e);
            Some(v.is_null() == *want_null)
        }
        Expr::IsDirected(var) => match element(env, var) {
            Some(ElementId::Edge(e)) => Some(graph.edge(e).endpoints.is_directed()),
            _ => None,
        },
        Expr::IsSourceOf { node, edge } => endpoint_test(graph, env, node, edge, true),
        Expr::IsDestinationOf { node, edge } => endpoint_test(graph, env, node, edge, false),
        Expr::Same(vars) => {
            let els: Option<Vec<_>> = vars.iter().map(|v| element(env, v)).collect();
            let els = els?;
            Some(els.windows(2).all(|w| w[0] == w[1]))
        }
        Expr::AllDifferent(vars) => {
            let els: Option<Vec<_>> = vars.iter().map(|v| element(env, v)).collect();
            let els = els?;
            Some((0..els.len()).all(|i| (i + 1..els.len()).all(|j| els[i] != els[j])))
        }
        Expr::Exists(gp) => env.exists(gp),
        // Anything else is a value expression; interpret its value as a
        // truth value (booleans only).
        other => eval(graph, env, other).truth(),
    }
}

/// Evaluates `expr` to a scalar [`Value`]; failures surface as `Null`.
pub fn eval(graph: &PropertyGraph, env: &dyn Env, expr: &Expr) -> Value {
    match expr {
        Expr::Literal(v) => v.clone(),
        Expr::Parameter(name) => env.param(name).unwrap_or(Value::Null),
        Expr::Var(_) => Value::Null, // bare element refs have no scalar value
        Expr::Property(var, key) => match element(env, var) {
            Some(el) => graph.property(el, key).clone(),
            None => Value::Null,
        },
        Expr::Arith(op, a, b) => {
            let a = eval(graph, env, a);
            let b = eval(graph, env, b);
            let r = match op {
                ArithOp::Add => a.add(&b),
                ArithOp::Sub => a.subtract(&b),
                ArithOp::Mul => a.multiply(&b),
                ArithOp::Div => a.divide(&b),
            };
            r.unwrap_or(Value::Null)
        }
        Expr::Aggregate {
            func,
            arg,
            distinct,
        } => aggregate(graph, env, *func, arg, *distinct),
        // Predicates used in value position yield their truth value.
        other => match truth(graph, env, other) {
            Some(b) => Value::Bool(b),
            None => Value::Null,
        },
    }
}

/// The element bound to `var`, when it is a singleton element binding.
fn element(env: &dyn Env, var: &str) -> Option<ElementId> {
    env.lookup(var).and_then(|v| v.as_element())
}

fn endpoint_test(
    graph: &PropertyGraph,
    env: &dyn Env,
    node: &str,
    edge: &str,
    want_source: bool,
) -> Option<bool> {
    let n = match element(env, node)? {
        ElementId::Node(n) => n,
        ElementId::Edge(_) => return None,
    };
    let e = match element(env, edge)? {
        ElementId::Edge(e) => e,
        ElementId::Node(_) => return None,
    };
    match graph.edge(e).endpoints {
        property_graph::Endpoints::Directed { src, dst } => {
            Some(if want_source { src == n } else { dst == n })
        }
        // Undirected edges have no source or destination.
        property_graph::Endpoints::Undirected(..) => Some(false),
    }
}

fn cmp(graph: &PropertyGraph, env: &dyn Env, op: CmpOp, a: &Expr, b: &Expr) -> Option<bool> {
    // GQL permits equality tests on element references (`p = q`, §4.7).
    if let (Expr::Var(va), Expr::Var(vb)) = (a, b) {
        let (ea, eb) = (element(env, va)?, element(env, vb)?);
        return match op {
            CmpOp::Eq => Some(ea == eb),
            CmpOp::Ne => Some(ea != eb),
            _ => None,
        };
    }
    let va = eval(graph, env, a);
    let vb = eval(graph, env, b);
    va.sql_compare(&vb).map(|ord| op.test(ord))
}

/// The group of elements an aggregate argument ranges over: a group
/// binding as-is, a singleton as a one-element group, an unbound variable
/// as the empty group.
fn agg_elements(env: &dyn Env, var: &str) -> Vec<ElementId> {
    match env.lookup(var) {
        Some(BoundValue::NodeGroup(ns)) => ns.into_iter().map(ElementId::Node).collect(),
        Some(BoundValue::EdgeGroup(es)) => es.into_iter().map(ElementId::Edge).collect(),
        Some(BoundValue::Node(n)) => vec![ElementId::Node(n)],
        Some(BoundValue::Edge(e)) => vec![ElementId::Edge(e)],
        _ => Vec::new(),
    }
}

fn aggregate(
    graph: &PropertyGraph,
    env: &dyn Env,
    func: AggFunc,
    arg: &AggArg,
    distinct: bool,
) -> Value {
    match arg {
        AggArg::Var(v) | AggArg::VarStar(v) => {
            // COUNT(e) / COUNT(e.*): count group members; other aggregates
            // over bare elements are meaningless and yield NULL.
            let mut els = agg_elements(env, v);
            if distinct {
                els.sort();
                els.dedup();
            }
            match func {
                AggFunc::Count => Value::Int(els.len() as i64),
                _ => Value::Null,
            }
        }
        AggArg::Property(v, key) => {
            // SQL semantics: NULL property values do not contribute.
            let mut vals: Vec<Value> = agg_elements(env, v)
                .into_iter()
                .map(|el| graph.property(el, key).clone())
                .filter(|v| !v.is_null())
                .collect();
            if distinct {
                vals.sort();
                vals.dedup();
            }
            match func {
                AggFunc::Count => Value::Int(vals.len() as i64),
                AggFunc::Min => vals.into_iter().min().unwrap_or(Value::Null),
                AggFunc::Max => vals.into_iter().max().unwrap_or(Value::Null),
                AggFunc::Sum => vals
                    .iter()
                    .try_fold(None::<Value>, |acc, v| match acc {
                        None => Some(Some(v.clone())),
                        Some(a) => a.add(v).map(Some),
                    })
                    .flatten()
                    .unwrap_or(Value::Null),
                AggFunc::Avg => {
                    if vals.is_empty() {
                        return Value::Null;
                    }
                    let n = vals.len() as f64;
                    let sum: Option<f64> = vals.iter().map(Value::as_f64).sum();
                    match sum {
                        Some(s) => Value::Float(s / n),
                        None => Value::Null,
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use property_graph::{Endpoints, PropertyGraph};
    use std::collections::BTreeMap;

    struct MapEnv(BTreeMap<String, BoundValue>);

    impl Env for MapEnv {
        fn lookup(&self, var: &str) -> Option<BoundValue> {
            self.0.get(var).cloned()
        }
    }

    fn setup() -> (PropertyGraph, MapEnv) {
        let mut g = PropertyGraph::new();
        let a = g.add_node(
            "a1",
            ["Account"],
            [
                ("owner", Value::str("Scott")),
                ("isBlocked", Value::str("no")),
            ],
        );
        let b = g.add_node("a2", ["Account"], [("owner", Value::str("Aretha"))]);
        let t1 = g.add_edge(
            "t1",
            Endpoints::directed(a, b),
            ["Transfer"],
            [("amount", Value::Int(8_000_000))],
        );
        let t2 = g.add_edge(
            "t2",
            Endpoints::directed(b, a),
            ["Transfer"],
            [("amount", Value::Int(10_000_000))],
        );
        let h = g.add_edge("hp", Endpoints::undirected(a, b), ["hasPhone"], []);
        let mut env = BTreeMap::new();
        env.insert("x".to_owned(), BoundValue::Node(a));
        env.insert("y".to_owned(), BoundValue::Node(b));
        env.insert("e".to_owned(), BoundValue::Edge(t1));
        env.insert("u".to_owned(), BoundValue::Edge(h));
        env.insert("ts".to_owned(), BoundValue::EdgeGroup(vec![t1, t2]));
        (g, MapEnv(env))
    }

    #[test]
    fn property_comparison() {
        let (g, env) = setup();
        let e = Expr::prop("x", "owner").eq(Expr::lit("Scott"));
        assert_eq!(truth(&g, &env, &e), Some(true));
        let e = Expr::prop("y", "isBlocked").eq(Expr::lit("no"));
        // a2 lacks isBlocked → NULL → unknown.
        assert_eq!(truth(&g, &env, &e), None);
    }

    #[test]
    fn unbound_variable_yields_unknown() {
        let (g, env) = setup();
        let e = Expr::prop("ghost", "a").eq(Expr::lit(1));
        assert_eq!(truth(&g, &env, &e), None);
        // Kleene OR rescues it.
        let rescued = e.or(Expr::lit(true));
        assert_eq!(truth(&g, &env, &rescued), Some(true));
    }

    #[test]
    fn kleene_three_valued_logic() {
        let (g, env) = setup();
        let unknown = Expr::prop("y", "isBlocked").eq(Expr::lit("no"));
        let t = Expr::lit(true);
        let f = Expr::lit(false);
        assert_eq!(
            truth(&g, &env, &unknown.clone().and(f.clone())),
            Some(false)
        );
        assert_eq!(truth(&g, &env, &unknown.clone().and(t.clone())), None);
        assert_eq!(truth(&g, &env, &unknown.clone().or(t)), Some(true));
        assert_eq!(truth(&g, &env, &unknown.clone().or(f)), None);
        assert_eq!(truth(&g, &env, &unknown.not()), None);
    }

    #[test]
    fn is_null_is_two_valued() {
        let (g, env) = setup();
        let e = Expr::IsNull(Box::new(Expr::prop("y", "isBlocked")), true);
        assert_eq!(truth(&g, &env, &e), Some(true));
        let e = Expr::IsNull(Box::new(Expr::prop("x", "isBlocked")), true);
        assert_eq!(truth(&g, &env, &e), Some(false));
        let e = Expr::IsNull(Box::new(Expr::prop("x", "isBlocked")), false);
        assert_eq!(truth(&g, &env, &e), Some(true));
    }

    #[test]
    fn graphical_predicates() {
        let (g, env) = setup();
        assert_eq!(truth(&g, &env, &Expr::IsDirected("e".into())), Some(true));
        assert_eq!(truth(&g, &env, &Expr::IsDirected("u".into())), Some(false));
        let src = Expr::IsSourceOf {
            node: "x".into(),
            edge: "e".into(),
        };
        assert_eq!(truth(&g, &env, &src), Some(true));
        let dst = Expr::IsDestinationOf {
            node: "x".into(),
            edge: "e".into(),
        };
        assert_eq!(truth(&g, &env, &dst), Some(false));
        // Undirected edges have neither source nor destination.
        let u = Expr::IsSourceOf {
            node: "x".into(),
            edge: "u".into(),
        };
        assert_eq!(truth(&g, &env, &u), Some(false));
    }

    #[test]
    fn same_and_all_different() {
        let (g, env) = setup();
        assert_eq!(
            truth(&g, &env, &Expr::Same(vec!["x".into(), "x".into()])),
            Some(true)
        );
        assert_eq!(
            truth(&g, &env, &Expr::Same(vec!["x".into(), "y".into()])),
            Some(false)
        );
        assert_eq!(
            truth(&g, &env, &Expr::AllDifferent(vec!["x".into(), "y".into()])),
            Some(true)
        );
        assert_eq!(
            truth(
                &g,
                &env,
                &Expr::AllDifferent(vec!["x".into(), "y".into(), "x".into()])
            ),
            Some(false)
        );
    }

    #[test]
    fn element_equality_like_gql() {
        let (g, env) = setup();
        let eq = Expr::cmp(CmpOp::Eq, Expr::Var("x".into()), Expr::Var("x".into()));
        assert_eq!(truth(&g, &env, &eq), Some(true));
        let ne = Expr::cmp(CmpOp::Ne, Expr::Var("x".into()), Expr::Var("y".into()));
        assert_eq!(truth(&g, &env, &ne), Some(true));
        // Ordering element refs is unknown.
        let lt = Expr::cmp(CmpOp::Lt, Expr::Var("x".into()), Expr::Var("y".into()));
        assert_eq!(truth(&g, &env, &lt), None);
    }

    #[test]
    fn aggregates_over_groups() {
        let (g, env) = setup();
        let count = Expr::Aggregate {
            func: AggFunc::Count,
            arg: AggArg::Var("ts".into()),
            distinct: false,
        };
        assert_eq!(eval(&g, &env, &count), Value::Int(2));
        let sum = Expr::Aggregate {
            func: AggFunc::Sum,
            arg: AggArg::Property("ts".into(), "amount".into()),
            distinct: false,
        };
        assert_eq!(eval(&g, &env, &sum), Value::Int(18_000_000));
        let avg = Expr::Aggregate {
            func: AggFunc::Avg,
            arg: AggArg::Property("ts".into(), "amount".into()),
            distinct: false,
        };
        assert_eq!(eval(&g, &env, &avg), Value::Float(9_000_000.0));
        let min = Expr::Aggregate {
            func: AggFunc::Min,
            arg: AggArg::Property("ts".into(), "amount".into()),
            distinct: false,
        };
        assert_eq!(eval(&g, &env, &min), Value::Int(8_000_000));
        let max = Expr::Aggregate {
            func: AggFunc::Max,
            arg: AggArg::Property("ts".into(), "amount".into()),
            distinct: false,
        };
        assert_eq!(eval(&g, &env, &max), Value::Int(10_000_000));
    }

    #[test]
    fn count_distinct_and_star() {
        let (g, mut env) = setup();
        let dup = match env.0.get("ts").unwrap() {
            BoundValue::EdgeGroup(es) => {
                let mut es = es.clone();
                es.push(es[0]);
                BoundValue::EdgeGroup(es)
            }
            _ => unreachable!(),
        };
        env.0.insert("ts".to_owned(), dup);
        let count = |distinct| Expr::Aggregate {
            func: AggFunc::Count,
            arg: AggArg::VarStar("ts".into()),
            distinct,
        };
        assert_eq!(eval(&g, &env, &count(false)), Value::Int(3));
        assert_eq!(eval(&g, &env, &count(true)), Value::Int(2));
        // WHERE COUNT(e) = COUNT(DISTINCT e) — PGQL's repeated-edge filter.
        let filter = Expr::cmp(CmpOp::Eq, count(false), count(true));
        assert_eq!(truth(&g, &env, &filter), Some(false));
    }

    #[test]
    fn aggregates_over_empty_groups() {
        let (g, env) = setup();
        let agg = |func| Expr::Aggregate {
            func,
            arg: AggArg::Property("nothing".into(), "amount".into()),
            distinct: false,
        };
        assert_eq!(eval(&g, &env, &agg(AggFunc::Count)), Value::Int(0));
        assert_eq!(eval(&g, &env, &agg(AggFunc::Sum)), Value::Null);
        assert_eq!(eval(&g, &env, &agg(AggFunc::Avg)), Value::Null);
        assert_eq!(eval(&g, &env, &agg(AggFunc::Min)), Value::Null);
    }

    #[test]
    fn arithmetic_expressions() {
        let (g, env) = setup();
        // 5.3's COUNT(e.*)/(COUNT(e.*)+1) > 1 with the group bound: 2/3 > 1 is false.
        let count = || Expr::Aggregate {
            func: AggFunc::Count,
            arg: AggArg::VarStar("ts".into()),
            distinct: false,
        };
        let quotient = Expr::Arith(
            ArithOp::Div,
            Box::new(count()),
            Box::new(Expr::Arith(
                ArithOp::Add,
                Box::new(count()),
                Box::new(Expr::lit(1)),
            )),
        );
        let e = Expr::cmp(CmpOp::Gt, quotient, Expr::lit(1));
        assert_eq!(truth(&g, &env, &e), Some(false));
        // Division by zero is NULL → unknown.
        let div0 = Expr::Arith(ArithOp::Div, Box::new(Expr::lit(1)), Box::new(Expr::lit(0)));
        assert_eq!(eval(&g, &env, &div0), Value::Null);
    }
}
