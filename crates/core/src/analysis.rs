//! Static analysis of graph patterns.
//!
//! Before evaluation, every GPML pattern passes through this module, which
//! implements the paper's compile-time discipline:
//!
//! * **Variable classification** (§4.4, §4.6): every variable is a node,
//!   edge, or path variable, and is an *unconditional singleton*, a
//!   *conditional singleton* (declared under `?` or in only some branches
//!   of a union/alternation), or a *group* variable (declared under a
//!   quantifier — including bounded ones such as `{0,1}`).
//! * **Join discipline**: implicit equi-joins are permitted only on
//!   unconditional singletons; joins on conditional singletons are
//!   rejected (§4.6), and group variables may not be redeclared outside
//!   their quantifier or in another path pattern.
//! * **Termination** (§5): every unbounded quantifier must be within the
//!   scope of a restrictor or a selector.
//! * **Unbounded aggregates** (§5.3): a *prefilter* (a `WHERE` inside an
//!   element pattern or parenthesized path pattern) may not aggregate a
//!   group variable that is still effectively unbounded at that point —
//!   selectors do not help, because prefilters run before selection.
//! * **Reference sanity**: predicates may only mention declared variables;
//!   group variables must be referenced through aggregates once a
//!   quantifier has been crossed; `SAME`/`ALL_DIFFERENT` require
//!   unconditional singletons (§4.7); a variable cannot be both a node and
//!   an edge variable; path variables must not collide.

use std::collections::{BTreeMap, BTreeSet};

use crate::ast::{Expr, GraphPattern, PathPattern, PathPatternExpr, Selector};
use crate::error::{Error, Result};
use crate::normalize::is_anonymous;

/// What sort of element a variable binds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VarKind {
    /// Binds a node.
    Node,
    /// Binds an edge.
    Edge,
    /// Binds a whole path (a `p = ...` path variable).
    Path,
}

/// The §4.4/§4.6 classification of a variable reference target.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VarClass {
    /// Bound exactly once in every match of its path pattern.
    Singleton,
    /// Bound in some matches only (`?`, or a strict subset of union
    /// branches); implicit equi-joins on these are illegal.
    ConditionalSingleton,
    /// Declared under a quantifier; binds to a list of elements and must
    /// be referenced through an aggregate once the quantifier is crossed.
    Group,
}

/// Everything the engines need to know about one variable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VarInfo {
    /// What sort of element the variable binds.
    pub kind: VarKind,
    /// Its singleton/conditional/group classification.
    pub class: VarClass,
}

/// The result of analyzing a graph pattern.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Analysis {
    vars: BTreeMap<String, VarInfo>,
}

impl Analysis {
    /// Info for one variable, if declared anywhere in the pattern.
    pub fn var(&self, name: &str) -> Option<VarInfo> {
        self.vars.get(name).copied()
    }

    /// Iterates over all declared variables.
    pub fn vars(&self) -> impl Iterator<Item = (&str, VarInfo)> {
        self.vars.iter().map(|(n, i)| (n.as_str(), *i))
    }

    /// True if `name` is declared as a group variable.
    pub fn is_group(&self, name: &str) -> bool {
        matches!(
            self.var(name),
            Some(VarInfo {
                class: VarClass::Group,
                ..
            })
        )
    }
}

/// One element-pattern occurrence of a variable.
#[derive(Clone, Debug)]
struct Site {
    path_idx: usize,
    kind: VarKind,
    /// Innermost enclosing quantifier id, if any.
    quant: Option<u32>,
    /// Ids of all enclosing quantifiers, outermost first.
    quant_stack: Vec<u32>,
    /// Innermost enclosing `?` or partial-union construct id, if any.
    cond: Option<u32>,
}

/// A predicate with enough context to judge its references.
#[derive(Clone, Debug)]
struct PredicateSite {
    expr: Expr,
    /// Enclosing quantifier ids at the predicate's location.
    quant_stack: Vec<u32>,
    /// True for prefilters (element or paren `WHERE`); false for the final
    /// `WHERE` postfilter.
    prefilter: bool,
}

#[derive(Clone, Debug)]
struct QuantInfo {
    /// True when the quantifier has no upper bound.
    unbounded: bool,
    /// True when a restrictor (path-head or enclosing paren) covers it.
    restricted: bool,
    /// True when a selector or restrictor covers it (termination, §5).
    covered: bool,
    rendered: String,
}

#[derive(Default)]
struct Collector {
    sites: Vec<(String, Site)>,
    predicates: Vec<PredicateSite>,
    quants: BTreeMap<u32, QuantInfo>,
    next_construct: u32,
}

/// Walk context, cheap to clone at branch points.
#[derive(Clone)]
struct Ctx {
    path_idx: usize,
    quant_stack: Vec<u32>,
    cond: Option<u32>,
    /// Termination coverage: selector or restrictor in scope.
    covered: bool,
    /// Restrictor (only) in scope — what makes groups effectively bounded
    /// for §5.3.
    restricted: bool,
}

impl Collector {
    fn fresh(&mut self) -> u32 {
        self.next_construct += 1;
        self.next_construct
    }

    fn walk(&mut self, p: &PathPattern, ctx: &Ctx) {
        match p {
            PathPattern::Node(n) => {
                if let Some(v) = &n.var {
                    self.site(v, VarKind::Node, ctx);
                }
                if let Some(pred) = &n.predicate {
                    self.predicates.push(PredicateSite {
                        expr: pred.clone(),
                        quant_stack: ctx.quant_stack.clone(),
                        prefilter: true,
                    });
                }
            }
            PathPattern::Edge(e) => {
                if let Some(v) = &e.var {
                    self.site(v, VarKind::Edge, ctx);
                }
                if let Some(pred) = &e.predicate {
                    self.predicates.push(PredicateSite {
                        expr: pred.clone(),
                        quant_stack: ctx.quant_stack.clone(),
                        prefilter: true,
                    });
                }
            }
            PathPattern::Concat(parts) => {
                for part in parts {
                    self.walk(part, ctx);
                }
            }
            PathPattern::Paren {
                restrictor,
                inner,
                predicate,
            } => {
                let mut inner_ctx = ctx.clone();
                if restrictor.is_some() {
                    inner_ctx.covered = true;
                    inner_ctx.restricted = true;
                }
                self.walk(inner, &inner_ctx);
                if let Some(pred) = predicate {
                    self.predicates.push(PredicateSite {
                        expr: pred.clone(),
                        quant_stack: ctx.quant_stack.clone(),
                        prefilter: true,
                    });
                }
            }
            PathPattern::Quantified { inner, quantifier } => {
                let id = self.fresh();
                self.quants.insert(
                    id,
                    QuantInfo {
                        unbounded: quantifier.is_unbounded(),
                        restricted: ctx.restricted,
                        covered: ctx.covered,
                        rendered: quantifier.to_string(),
                    },
                );
                let mut inner_ctx = ctx.clone();
                inner_ctx.quant_stack.push(id);
                self.walk(inner, &inner_ctx);
            }
            PathPattern::Questioned(inner) => {
                let id = self.fresh();
                let mut inner_ctx = ctx.clone();
                inner_ctx.cond = Some(id);
                self.walk(inner, &inner_ctx);
            }
            PathPattern::Union(branches) | PathPattern::Alternation(branches) => {
                // A variable declared in only some branches is conditional;
                // `guaranteed` (below) detects that. Here we record the
                // construct so conditional sites can share a scope.
                let id = self.fresh();
                for b in branches {
                    let mut inner_ctx = ctx.clone();
                    inner_ctx.cond = Some(id);
                    self.walk(b, &inner_ctx);
                }
            }
        }
    }

    fn site(&mut self, var: &str, kind: VarKind, ctx: &Ctx) {
        self.sites.push((
            var.to_owned(),
            Site {
                path_idx: ctx.path_idx,
                kind,
                quant: ctx.quant_stack.last().copied(),
                quant_stack: ctx.quant_stack.clone(),
                cond: ctx.cond,
            },
        ));
    }
}

/// Variables bound in *every* match of `p` (used to tell conditional from
/// unconditional singletons).
fn guaranteed(p: &PathPattern) -> BTreeSet<String> {
    match p {
        PathPattern::Node(n) => n.var.iter().cloned().collect(),
        PathPattern::Edge(e) => e.var.iter().cloned().collect(),
        PathPattern::Concat(parts) => {
            let mut out = BTreeSet::new();
            for part in parts {
                out.extend(guaranteed(part));
            }
            out
        }
        PathPattern::Paren { inner, .. } => guaranteed(inner),
        PathPattern::Quantified { inner, quantifier } => {
            if quantifier.min >= 1 {
                guaranteed(inner)
            } else {
                BTreeSet::new()
            }
        }
        PathPattern::Questioned(_) => BTreeSet::new(),
        PathPattern::Union(branches) | PathPattern::Alternation(branches) => {
            let mut iter = branches.iter().map(guaranteed);
            let first = iter.next().unwrap_or_default();
            iter.fold(first, |acc, b| acc.intersection(&b).cloned().collect())
        }
    }
}

/// Analyzes a graph pattern, returning variable classifications or the
/// first static error. Engines call this before evaluating; hosts (GQL,
/// SQL/PGQ) call it to validate queries and learn result shapes.
pub fn analyze(pattern: &GraphPattern) -> Result<Analysis> {
    let mut collector = Collector::default();
    let mut guaranteed_by_path: Vec<BTreeSet<String>> = Vec::new();
    let mut path_vars: Vec<(usize, String)> = Vec::new();

    for (idx, expr) in pattern.paths.iter().enumerate() {
        let PathPatternExpr {
            selector,
            restrictor,
            path_var,
            pattern: p,
        } = expr;
        let ctx = Ctx {
            path_idx: idx,
            quant_stack: Vec::new(),
            cond: None,
            covered: selector.as_ref().is_some_and(Selector::covers_termination)
                || restrictor.is_some(),
            restricted: restrictor.is_some(),
        };
        collector.walk(p, &ctx);
        guaranteed_by_path.push(guaranteed(p));
        if let Some(v) = path_var {
            path_vars.push((idx, v.clone()));
        }
    }

    // -- Termination (§5): unbounded quantifier must be covered. ----------
    for info in collector.quants.values() {
        if info.unbounded && !info.covered {
            return Err(Error::UnboundedQuantifier {
                quantifier: info.rendered.clone(),
            });
        }
    }

    // -- Per-variable classification and join discipline. -----------------
    let mut sites_by_var: BTreeMap<&str, Vec<&Site>> = BTreeMap::new();
    for (name, site) in &collector.sites {
        sites_by_var.entry(name.as_str()).or_default().push(site);
    }

    let mut vars: BTreeMap<String, VarInfo> = BTreeMap::new();
    for (name, sites) in &sites_by_var {
        // Kind consistency.
        let kind = sites[0].kind;
        if sites.iter().any(|s| s.kind != kind) {
            return Err(Error::KindConflict {
                var: (*name).to_owned(),
            });
        }

        let any_group = sites.iter().any(|s| s.quant.is_some());
        let class = if any_group {
            // Group variables: every site must sit under the same innermost
            // quantifier, in the same path pattern.
            let q0 = sites[0].quant;
            if sites.iter().any(|s| s.quant != q0)
                || sites.iter().any(|s| s.path_idx != sites[0].path_idx)
            {
                return Err(Error::GroupJoin {
                    var: (*name).to_owned(),
                });
            }
            VarClass::Group
        } else {
            // A declaration is *conditional* when the path pattern it
            // appears in does not guarantee a binding (a strict subset of
            // union branches, or under `?`).
            let conditional_somewhere = sites
                .iter()
                .any(|s| !guaranteed_by_path[s.path_idx].contains(*name));
            if conditional_somewhere {
                // Implicit equi-joins on conditional singletons are
                // forbidden (§4.6): all sites must live inside one
                // conditional construct of one path pattern.
                let spans_paths = sites.iter().any(|s| s.path_idx != sites[0].path_idx);
                let c0 = sites[0].cond;
                let same_construct = c0.is_some() && sites.iter().all(|s| s.cond == c0);
                if sites.len() > 1 && (spans_paths || !same_construct) {
                    return Err(Error::ConditionalJoin {
                        var: (*name).to_owned(),
                    });
                }
                VarClass::ConditionalSingleton
            } else {
                VarClass::Singleton
            }
        };
        vars.insert((*name).to_owned(), VarInfo { kind, class });
    }

    // -- Path variables. ---------------------------------------------------
    let mut seen_paths = BTreeSet::new();
    for (_, v) in &path_vars {
        if vars.contains_key(v) || !seen_paths.insert(v.clone()) {
            return Err(Error::PathVarConflict { var: v.clone() });
        }
    }
    for (_, v) in &path_vars {
        vars.insert(
            v.clone(),
            VarInfo {
                kind: VarKind::Path,
                class: VarClass::Singleton,
            },
        );
    }

    // -- Predicate reference checks. ----------------------------------------
    let site_of = |v: &str| sites_by_var.get(v).map(|s| s[0]);
    let check_refs = |site: &PredicateSite| -> Result<()> {
        let mut err = None;
        site.expr.visit_vars(&mut |v, in_agg| {
            if err.is_some() || is_anonymous(v) {
                return;
            }
            let Some(info) = vars.get(v) else {
                err = Some(Error::UnknownVariable { var: v.to_owned() });
                return;
            };
            if info.kind == VarKind::Path {
                // Path variables are only consumed by hosts (RETURN /
                // COLUMNS), not by predicates, in this GPML subset.
                err = Some(Error::Unsupported(format!(
                    "path variable {v} referenced in a predicate"
                )));
                return;
            }
            let decl = site_of(v).expect("declared var has a site");
            // Does this reference cross the variable's quantifier?
            let crosses = decl.quant.is_some() && !site.quant_stack.contains(&decl.quant.unwrap());
            if !in_agg {
                if crosses {
                    err = Some(Error::GroupAsSingleton { var: v.to_owned() });
                }
            } else if crosses && site.prefilter {
                // §5.3: a prefilter aggregate sees the group as unbounded
                // unless every crossed quantifier is bounded or inside a
                // restrictor. Selectors do not help prefilters.
                let crossed_unbounded = decl
                    .quant_stack
                    .iter()
                    .filter(|q| !site.quant_stack.contains(q))
                    .any(|q| {
                        let info = &collector.quants[q];
                        info.unbounded && !info.restricted
                    });
                if crossed_unbounded {
                    err = Some(Error::UnboundedAggregate { var: v.to_owned() });
                }
            }
        });
        if let Some(e) = err {
            return Err(e);
        }
        // SAME / ALL_DIFFERENT need unconditional singletons (§4.7).
        let mut element_tests = Vec::new();
        collect_element_tests(&site.expr, &mut element_tests);
        for v in element_tests {
            match vars.get(v) {
                Some(VarInfo {
                    class: VarClass::Singleton,
                    ..
                }) => {}
                Some(_) => return Err(Error::ConditionalElementTest { var: v.to_owned() }),
                None => return Err(Error::UnknownVariable { var: v.to_owned() }),
            }
        }
        Ok(())
    };

    for site in &collector.predicates {
        // EXISTS runs a correlated subquery; prefilters cannot host one
        // (they run mid-search, before the row exists).
        let mut subs = Vec::new();
        collect_exists(&site.expr, &mut subs);
        if !subs.is_empty() {
            return Err(Error::Unsupported(
                "EXISTS is only supported in the final WHERE".to_owned(),
            ));
        }
        check_refs(site)?;
    }
    if let Some(post) = &pattern.where_clause {
        // Subqueries must be well-formed (and terminating) on their own.
        let mut subs = Vec::new();
        collect_exists(post, &mut subs);
        for sub in subs {
            analyze(sub)?;
        }
        check_refs(&PredicateSite {
            expr: post.clone(),
            quant_stack: Vec::new(),
            prefilter: false,
        })?;
    }

    Ok(Analysis { vars })
}

/// Collects all `EXISTS` subqueries in `e`.
pub(crate) fn collect_exists<'a>(e: &'a Expr, out: &mut Vec<&'a GraphPattern>) {
    match e {
        Expr::Exists(gp) => out.push(gp),
        Expr::Not(i) | Expr::IsNull(i, _) => collect_exists(i, out),
        Expr::And(a, b) | Expr::Or(a, b) | Expr::Cmp(_, a, b) | Expr::Arith(_, a, b) => {
            collect_exists(a, out);
            collect_exists(b, out);
        }
        _ => {}
    }
}

/// Collects the arguments of all `SAME`/`ALL_DIFFERENT` calls in `e`.
fn collect_element_tests<'a>(e: &'a Expr, out: &mut Vec<&'a str>) {
    match e {
        Expr::Same(vs) | Expr::AllDifferent(vs) => {
            out.extend(vs.iter().map(String::as_str));
        }
        Expr::Not(inner) | Expr::IsNull(inner, _) => collect_element_tests(inner, out),
        Expr::And(a, b) | Expr::Or(a, b) | Expr::Cmp(_, a, b) | Expr::Arith(_, a, b) => {
            collect_element_tests(a, out);
            collect_element_tests(b, out);
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::*;

    fn node(v: &str) -> PathPattern {
        PathPattern::Node(NodePattern::var(v))
    }

    fn edge(v: &str) -> PathPattern {
        PathPattern::Edge(EdgePattern::any(Direction::Right).with_var(v))
    }

    fn seq(parts: Vec<PathPattern>) -> PathPattern {
        PathPattern::concat(parts)
    }

    fn single(p: PathPattern) -> GraphPattern {
        GraphPattern::single(p)
    }

    #[test]
    fn simple_singletons() {
        let g = single(seq(vec![node("x"), edge("e"), node("y")]));
        let a = analyze(&g).unwrap();
        assert_eq!(
            a.var("x"),
            Some(VarInfo {
                kind: VarKind::Node,
                class: VarClass::Singleton
            })
        );
        assert_eq!(a.var("e").unwrap().kind, VarKind::Edge);
        assert!(a.var("zzz").is_none());
    }

    #[test]
    fn quantified_variables_are_groups() {
        // (a) [()-[t]->()]{2,5} (b)
        let body = seq(vec![node("i"), edge("t"), node("j")]).paren();
        let g = single(seq(vec![
            node("a"),
            body.quantified(Quantifier::range(2, Some(5))),
            node("b"),
        ]));
        let a = analyze(&g).unwrap();
        assert_eq!(a.var("t").unwrap().class, VarClass::Group);
        assert_eq!(a.var("i").unwrap().class, VarClass::Group);
        assert_eq!(a.var("a").unwrap().class, VarClass::Singleton);
        assert!(a.is_group("t"));
    }

    #[test]
    fn zero_one_quantifier_still_groups_but_question_mark_is_conditional() {
        // {0,1} exposes variables as group; `?` as conditional singletons (§4.6).
        let q = single(seq(vec![
            node("x"),
            seq(vec![edge("e"), node("y")])
                .paren()
                .quantified(Quantifier::range(0, Some(1))),
        ]));
        let a = analyze(&q).unwrap();
        assert_eq!(a.var("y").unwrap().class, VarClass::Group);

        let qm = single(seq(vec![
            node("x"),
            PathPattern::Questioned(Box::new(seq(vec![edge("e"), node("y")]).paren())),
        ]));
        let a = analyze(&qm).unwrap();
        assert_eq!(a.var("y").unwrap().class, VarClass::ConditionalSingleton);
        assert_eq!(a.var("x").unwrap().class, VarClass::Singleton);
    }

    #[test]
    fn union_makes_partial_variables_conditional() {
        // [(x)->(y)] | [(x)->(z)] — x unconditional, y/z conditional (§4.6).
        let b1 = seq(vec![node("x"), edge("e1"), node("y")]).paren();
        let b2 = seq(vec![node("x"), edge("e2"), node("z")]).paren();
        let g = single(PathPattern::Union(vec![b1, b2]));
        let a = analyze(&g).unwrap();
        assert_eq!(a.var("x").unwrap().class, VarClass::Singleton);
        assert_eq!(a.var("y").unwrap().class, VarClass::ConditionalSingleton);
        assert_eq!(a.var("z").unwrap().class, VarClass::ConditionalSingleton);
    }

    #[test]
    fn conditional_join_rejected() {
        // MATCH [(x)->(y)] | [(x)->(z)], (y)->(w) is illegal (§4.6).
        let b1 = seq(vec![node("x"), edge("e1"), node("y")]).paren();
        let b2 = seq(vec![node("x"), edge("e2"), node("z")]).paren();
        let g = GraphPattern {
            paths: vec![
                PathPatternExpr::plain(PathPattern::Union(vec![b1, b2])),
                PathPatternExpr::plain(seq(vec![node("y"), edge("e3"), node("w")])),
            ],
            where_clause: None,
        };
        assert_eq!(analyze(&g), Err(Error::ConditionalJoin { var: "y".into() }));
    }

    #[test]
    fn unbounded_quantifier_requires_restrictor_or_selector() {
        let body = seq(vec![node("i"), edge("t"), node("j")]).paren();
        let star = seq(vec![
            node("a"),
            body.quantified(Quantifier::star()),
            node("b"),
        ]);

        // Bare: rejected.
        assert!(matches!(
            analyze(&single(star.clone())),
            Err(Error::UnboundedQuantifier { .. })
        ));
        // With a restrictor: accepted.
        let with_restrictor = GraphPattern {
            paths: vec![PathPatternExpr {
                selector: None,
                restrictor: Some(Restrictor::Trail),
                path_var: None,
                pattern: star.clone(),
            }],
            where_clause: None,
        };
        assert!(analyze(&with_restrictor).is_ok());
        // With a selector: accepted.
        let with_selector = GraphPattern {
            paths: vec![PathPatternExpr {
                selector: Some(Selector::AnyShortest),
                restrictor: None,
                path_var: None,
                pattern: star,
            }],
            where_clause: None,
        };
        assert!(analyze(&with_selector).is_ok());
    }

    #[test]
    fn paren_restrictor_covers_inner_quantifier() {
        // [TRAIL (x)-[e]->*(y)] — restrictor at paren head covers `*`.
        let inner = seq(vec![
            node("x"),
            edge("e").quantified(Quantifier::star()),
            node("y"),
        ]);
        let covered = PathPattern::Paren {
            restrictor: Some(Restrictor::Trail),
            inner: Box::new(inner),
            predicate: None,
        };
        assert!(analyze(&single(covered)).is_ok());
    }

    #[test]
    fn prefilter_aggregate_over_unbounded_group_rejected() {
        // ALL SHORTEST [(x)-[e]->*(y) WHERE COUNT(e.*) > 1] — rejected (§5.3):
        // the selector does not bound the group seen by a prefilter.
        let agg = Expr::Aggregate {
            func: AggFunc::Count,
            arg: AggArg::VarStar("e".into()),
            distinct: false,
        };
        let inner = seq(vec![
            node("x"),
            edge("e").quantified(Quantifier::star()),
            node("y"),
        ]);
        let paren = PathPattern::Paren {
            restrictor: None,
            inner: Box::new(inner.clone()),
            predicate: Some(Expr::cmp(CmpOp::Gt, agg.clone(), Expr::lit(1))),
        };
        let g = GraphPattern {
            paths: vec![PathPatternExpr {
                selector: Some(Selector::AllShortest),
                restrictor: None,
                path_var: None,
                pattern: paren,
            }],
            where_clause: None,
        };
        assert_eq!(
            analyze(&g),
            Err(Error::UnboundedAggregate { var: "e".into() })
        );

        // Same aggregate as a postfilter: accepted (§5.3).
        let g = GraphPattern {
            paths: vec![PathPatternExpr {
                selector: Some(Selector::AllShortest),
                restrictor: None,
                path_var: None,
                pattern: inner.clone(),
            }],
            where_clause: Some(Expr::cmp(CmpOp::Gt, agg.clone(), Expr::lit(1))),
        };
        assert!(analyze(&g).is_ok());

        // Restrictor inside the paren: accepted (§5.3).
        let paren = PathPattern::Paren {
            restrictor: Some(Restrictor::Trail),
            inner: Box::new(inner),
            predicate: Some(Expr::cmp(CmpOp::Gt, agg, Expr::lit(1))),
        };
        let g = GraphPattern {
            paths: vec![PathPatternExpr {
                selector: Some(Selector::AllShortest),
                restrictor: None,
                path_var: None,
                pattern: paren,
            }],
            where_clause: None,
        };
        assert!(analyze(&g).is_ok());
    }

    #[test]
    fn group_variable_as_singleton_in_postfilter_rejected() {
        let body = seq(vec![node("i"), edge("t"), node("j")]).paren();
        let g = GraphPattern {
            paths: vec![PathPatternExpr::plain(seq(vec![
                node("a"),
                body.quantified(Quantifier::range(1, Some(3))),
                node("b"),
            ]))],
            where_clause: Some(
                Expr::prop("t", "amount").eq(Expr::lit(5)), // t is a group
            ),
        };
        assert_eq!(
            analyze(&g),
            Err(Error::GroupAsSingleton { var: "t".into() })
        );
    }

    #[test]
    fn singleton_reference_inside_own_quantifier_ok() {
        // [()-[t]->() WHERE t.amount>1M]{2,5} — t referenced as singleton
        // within its own iteration (§4.4).
        let body = PathPattern::Paren {
            restrictor: None,
            inner: Box::new(seq(vec![node("i"), edge("t"), node("j")])),
            predicate: Some(Expr::cmp(
                CmpOp::Gt,
                Expr::prop("t", "amount"),
                Expr::lit(1_000_000),
            )),
        };
        let g = single(seq(vec![
            node("a"),
            body.quantified(Quantifier::range(2, Some(5))),
            node("b"),
        ]));
        assert!(analyze(&g).is_ok());
    }

    #[test]
    fn parameters_are_not_variable_references() {
        // `$min` needs no declaration; the variable discipline still
        // applies to the real references around it.
        let g = GraphPattern {
            paths: vec![PathPatternExpr::plain(seq(vec![
                node("x"),
                edge("e"),
                node("y"),
            ]))],
            where_clause: Some(Expr::cmp(
                CmpOp::Gt,
                Expr::prop("x", "w"),
                Expr::Parameter("min".into()),
            )),
        };
        let a = analyze(&g).unwrap();
        assert!(a.var("min").is_none(), "parameters are not variables");
        // An undeclared *variable* beside a parameter is still caught.
        let bad = GraphPattern {
            paths: g.paths.clone(),
            where_clause: Some(Expr::cmp(
                CmpOp::Gt,
                Expr::prop("ghost", "w"),
                Expr::Parameter("min".into()),
            )),
        };
        assert_eq!(
            analyze(&bad),
            Err(Error::UnknownVariable {
                var: "ghost".into()
            })
        );
    }

    #[test]
    fn kind_conflict_rejected() {
        let g = single(seq(vec![node("x"), edge("x"), node("y")]));
        assert_eq!(analyze(&g), Err(Error::KindConflict { var: "x".into() }));
    }

    #[test]
    fn unknown_variable_in_predicate_rejected() {
        let g = GraphPattern {
            paths: vec![PathPatternExpr::plain(seq(vec![
                node("x"),
                edge("e"),
                node("y"),
            ]))],
            where_clause: Some(Expr::prop("ghost", "a").eq(Expr::lit(1))),
        };
        assert_eq!(
            analyze(&g),
            Err(Error::UnknownVariable {
                var: "ghost".into()
            })
        );
    }

    #[test]
    fn same_requires_unconditional_singletons() {
        let b1 = seq(vec![node("x"), edge("e1"), node("y")]).paren();
        let b2 = seq(vec![node("x"), edge("e2"), node("z")]).paren();
        let g = GraphPattern {
            paths: vec![PathPatternExpr::plain(PathPattern::Union(vec![b1, b2]))],
            where_clause: Some(Expr::Same(vec!["x".into(), "y".into()])),
        };
        assert_eq!(
            analyze(&g),
            Err(Error::ConditionalElementTest { var: "y".into() })
        );
    }

    #[test]
    fn path_variable_registered_and_conflicts_detected() {
        let g = GraphPattern {
            paths: vec![PathPatternExpr {
                selector: None,
                restrictor: None,
                path_var: Some("p".into()),
                pattern: seq(vec![node("x"), edge("e"), node("y")]),
            }],
            where_clause: None,
        };
        let a = analyze(&g).unwrap();
        assert_eq!(a.var("p").unwrap().kind, VarKind::Path);

        let clash = GraphPattern {
            paths: vec![PathPatternExpr {
                selector: None,
                restrictor: None,
                path_var: Some("x".into()),
                pattern: seq(vec![node("x"), edge("e"), node("y")]),
            }],
            where_clause: None,
        };
        assert_eq!(
            analyze(&clash),
            Err(Error::PathVarConflict { var: "x".into() })
        );
    }

    #[test]
    fn group_join_across_path_patterns_rejected() {
        let body = seq(vec![node("i"), edge("t"), node("j")]).paren();
        let g = GraphPattern {
            paths: vec![
                PathPatternExpr::plain(seq(vec![
                    node("a"),
                    body.clone().quantified(Quantifier::range(1, Some(2))),
                    node("b"),
                ])),
                PathPatternExpr::plain(seq(vec![node("c"), edge("t"), node("d")])),
            ],
            where_clause: None,
        };
        assert_eq!(analyze(&g), Err(Error::GroupJoin { var: "t".into() }));
    }

    #[test]
    fn cross_pattern_singleton_join_allowed() {
        // The §4.3 style: (s)-[..]-(), (s)-[t..]->() — s joins.
        let g = GraphPattern {
            paths: vec![
                PathPatternExpr::plain(seq(vec![node("s"), edge("e1"), node("x")])),
                PathPatternExpr::plain(seq(vec![node("s"), edge("e2"), node("y")])),
            ],
            where_clause: None,
        };
        let a = analyze(&g).unwrap();
        assert_eq!(a.var("s").unwrap().class, VarClass::Singleton);
    }
}
