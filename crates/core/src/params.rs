//! Query parameters — the *bind* step of prepare → bind → execute.
//!
//! A [`Params`] map carries the values for the `$name` placeholders of a
//! parameterized query. The query text stays a *skeleton*: `$min` parses
//! into [`Expr::Parameter`](crate::ast::Expr::Parameter), the skeleton is
//! prepared (and plan-cached) once, and every execution binds a fresh
//! `Params` — so a million requests that differ only in their constants
//! share one compiled plan instead of missing the plan cache a million
//! times.
//!
//! Binding is validated against the plan's parameter *slots* before
//! execution: an unbound slot, a binding no slot consumes, or a value
//! whose type contradicts how the parameter is used (e.g. a string bound
//! to `$min` in `x.w > $min AND $min > 0`) each surface as a typed
//! [`Error`](crate::Error) instead of silently matching nothing.
//!
//! ```
//! use gpml_core::ast::*;
//! use gpml_core::plan::prepare;
//! use gpml_core::{EvalOptions, Params};
//! use property_graph::{Endpoints, PropertyGraph, Value};
//!
//! let mut g = PropertyGraph::new();
//! let a = g.add_node("a", ["N"], [("w", Value::Int(1))]);
//! let b = g.add_node("b", ["N"], [("w", Value::Int(9))]);
//! g.add_edge("ab", Endpoints::directed(a, b), ["T"], []);
//!
//! // MATCH (x WHERE x.w >= $min): prepare the skeleton once ...
//! let pattern = GraphPattern::single(PathPattern::Node(
//!     NodePattern::var("x").with_predicate(Expr::cmp(
//!         CmpOp::Ge,
//!         Expr::prop("x", "w"),
//!         Expr::Parameter("min".into()),
//!     )),
//! ));
//! let query = prepare(&pattern, &EvalOptions::default())?;
//!
//! // ... then re-bind and execute as often as needed.
//! let strict = Params::new().with("min", 5);
//! let loose = Params::new().with("min", 0);
//! assert_eq!(query.execute_with(&g, &strict)?.len(), 1);
//! assert_eq!(query.execute_with(&g, &loose)?.len(), 2);
//! # Ok::<(), gpml_core::Error>(())
//! ```

use std::collections::BTreeMap;
use std::fmt;

use property_graph::Value;

/// A named set of parameter bindings for one execution of a prepared
/// query.
///
/// Build one with [`Params::new`] + [`Params::with`] (builder style) or
/// [`Params::set`], or collect from an iterator of `(name, value)` pairs.
/// Names are written without the `$` sigil.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Params {
    values: BTreeMap<String, Value>,
}

impl Params {
    /// An empty binding set.
    pub fn new() -> Params {
        Params::default()
    }

    /// Builder-style insertion: `Params::new().with("min", 5)`.
    pub fn with(mut self, name: impl Into<String>, value: impl Into<Value>) -> Params {
        self.values.insert(name.into(), value.into());
        self
    }

    /// Binds (or re-binds) `name` to `value`.
    pub fn set(&mut self, name: impl Into<String>, value: impl Into<Value>) -> &mut Params {
        self.values.insert(name.into(), value.into());
        self
    }

    /// Removes a binding, returning its previous value.
    pub fn unset(&mut self, name: &str) -> Option<Value> {
        self.values.remove(name)
    }

    /// The value bound to `name`, if any.
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.values.get(name)
    }

    /// True when `name` is bound.
    pub fn contains(&self, name: &str) -> bool {
        self.values.contains_key(name)
    }

    /// Bound names, in sorted order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.values.keys().map(String::as_str)
    }

    /// `(name, value)` pairs, in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.values.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of bindings.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when no parameter is bound.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

impl<N: Into<String>, V: Into<Value>> FromIterator<(N, V)> for Params {
    fn from_iter<I: IntoIterator<Item = (N, V)>>(iter: I) -> Params {
        Params {
            values: iter
                .into_iter()
                .map(|(n, v)| (n.into(), v.into()))
                .collect(),
        }
    }
}

impl fmt::Display for Params {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, (name, value)) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            match value {
                Value::Str(s) => write!(f, "${name}='{s}'")?,
                other => write!(f, "${name}={other}")?,
            }
        }
        Ok(())
    }
}

/// A usage-inferred expectation about a parameter's value type, collected
/// at prepare time and checked at bind time.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum ParamType {
    /// Used in arithmetic or compared against a numeric literal.
    Number,
    /// Compared against a string literal.
    Text,
    /// Compared against a boolean literal.
    Boolean,
}

impl ParamType {
    /// True when `value` is compatible with this expectation. `Null` is
    /// compatible with everything (three-valued logic handles it).
    pub fn admits(self, value: &Value) -> bool {
        matches!(
            (self, value),
            (_, Value::Null)
                | (ParamType::Number, Value::Int(_) | Value::Float(_))
                | (ParamType::Text, Value::Str(_))
                | (ParamType::Boolean, Value::Bool(_))
        )
    }

    /// Human-readable name for error messages.
    pub fn describe(self) -> &'static str {
        match self {
            ParamType::Number => "a number",
            ParamType::Text => "a string",
            ParamType::Boolean => "a boolean",
        }
    }
}

/// Human-readable type name of a bound value, for mismatch errors.
pub(crate) fn value_type_name(v: &Value) -> &'static str {
    match v {
        Value::Null => "NULL",
        Value::Bool(_) => "a boolean",
        Value::Int(_) | Value::Float(_) => "a number",
        Value::Str(_) => "a string",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_lookup() {
        let p = Params::new().with("min", 5).with("owner", "Dave");
        assert_eq!(p.get("min"), Some(&Value::Int(5)));
        assert_eq!(p.get("owner"), Some(&Value::str("Dave")));
        assert!(p.get("missing").is_none());
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
        assert_eq!(p.names().collect::<Vec<_>>(), vec!["min", "owner"]);
    }

    #[test]
    fn set_and_unset() {
        let mut p = Params::new();
        p.set("k", 1).set("k", 2);
        assert_eq!(p.get("k"), Some(&Value::Int(2)));
        assert_eq!(p.unset("k"), Some(Value::Int(2)));
        assert!(p.is_empty());
    }

    #[test]
    fn from_iterator_and_display() {
        let p: Params = [("a", Value::Int(1)), ("b", Value::str("x"))]
            .into_iter()
            .collect();
        assert_eq!(p.to_string(), "$a=1, $b='x'");
    }

    #[test]
    fn type_expectations() {
        assert!(ParamType::Number.admits(&Value::Int(1)));
        assert!(ParamType::Number.admits(&Value::Float(1.5)));
        assert!(!ParamType::Number.admits(&Value::str("x")));
        assert!(ParamType::Text.admits(&Value::str("x")));
        assert!(!ParamType::Text.admits(&Value::Bool(true)));
        assert!(ParamType::Boolean.admits(&Value::Bool(true)));
        // NULL is universally admissible.
        assert!(ParamType::Number.admits(&Value::Null));
        assert!(ParamType::Text.admits(&Value::Null));
    }
}
