//! Errors raised by static analysis (§4.6, §5) and evaluation.

use std::fmt;

/// A GPML static-analysis or evaluation error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Error {
    /// An unbounded quantifier (`*`, `+`, `{m,}`) is not in the scope of a
    /// restrictor or selector, so the query might not terminate (§5).
    UnboundedQuantifier {
        /// The quantifier's concrete syntax (`*`, `+`, `{m,}`).
        quantifier: String,
    },
    /// A prefilter aggregates a group variable that is effectively
    /// unbounded at that point (§5.3): the enclosing quantifier has no
    /// upper bound and no restrictor bounds it.
    UnboundedAggregate {
        /// The aggregated group variable.
        var: String,
    },
    /// An implicit equi-join on a conditional singleton, which GPML forbids
    /// because it lacks intuitive semantics (§4.6).
    ConditionalJoin {
        /// The conditional singleton variable.
        var: String,
    },
    /// `SAME` / `ALL_DIFFERENT` applied to a variable that is not an
    /// unconditional singleton (§4.7).
    ConditionalElementTest {
        /// The offending variable.
        var: String,
    },
    /// A group variable is shared between two elements that would join on
    /// it (across path patterns or across a quantifier boundary).
    GroupJoin {
        /// The shared group variable.
        var: String,
    },
    /// A group variable referenced outside an aggregate in a postfilter.
    GroupAsSingleton {
        /// The group variable referenced as a singleton.
        var: String,
    },
    /// A reference to a variable no pattern declares.
    UnknownVariable {
        /// The undeclared variable.
        var: String,
    },
    /// A path variable reused or colliding with an element variable.
    PathVarConflict {
        /// The conflicting path variable.
        var: String,
    },
    /// A variable used both as node and as edge variable.
    KindConflict {
        /// The variable with conflicting kinds.
        var: String,
    },
    /// An evaluation resource limit was exceeded.
    LimitExceeded {
        /// What overflowed (e.g. `"matches"`, `"frontier states"`).
        what: &'static str,
        /// The configured limit that was exceeded.
        limit: usize,
    },
    /// The query declares a `$name` parameter the execution did not bind.
    UnboundParameter {
        /// The unbound parameter's name (without the `$`).
        name: String,
    },
    /// The execution bound a parameter no `$name` placeholder consumes.
    UnusedParameter {
        /// The superfluous parameter's name (without the `$`).
        name: String,
    },
    /// A bound parameter value contradicts how the query uses it (e.g. a
    /// string bound to a parameter used in arithmetic).
    ParameterTypeMismatch {
        /// The parameter's name (without the `$`).
        name: String,
        /// What the query's usage of the parameter requires.
        expected: &'static str,
        /// What was actually bound.
        got: &'static str,
    },
    /// Feature outside the implemented GPML subset.
    Unsupported(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::UnboundedQuantifier { quantifier } => write!(
                f,
                "unbounded quantifier {quantifier} is not within the scope of a \
                 restrictor or selector; the match set could be infinite"
            ),
            Error::UnboundedAggregate { var } => write!(
                f,
                "prefilter aggregates group variable {var} while it is effectively \
                 unbounded; bound the quantifier or move the predicate to the final WHERE"
            ),
            Error::ConditionalJoin { var } => write!(
                f,
                "implicit equi-join on conditional singleton {var} is not allowed"
            ),
            Error::ConditionalElementTest { var } => write!(
                f,
                "SAME/ALL_DIFFERENT requires unconditional singletons, but {var} is not one"
            ),
            Error::GroupJoin { var } => {
                write!(f, "group variable {var} cannot participate in an equi-join")
            }
            Error::GroupAsSingleton { var } => write!(
                f,
                "group variable {var} must be referenced through an aggregate here"
            ),
            Error::UnknownVariable { var } => write!(f, "unknown variable {var}"),
            Error::PathVarConflict { var } => {
                write!(f, "path variable {var} conflicts with another declaration")
            }
            Error::KindConflict { var } => {
                write!(
                    f,
                    "variable {var} is used as both a node and an edge variable"
                )
            }
            Error::LimitExceeded { what, limit } => {
                write!(f, "evaluation limit exceeded: more than {limit} {what}")
            }
            Error::UnboundParameter { name } => {
                write!(
                    f,
                    "parameter ${name} is not bound; bind it before executing"
                )
            }
            Error::UnusedParameter { name } => {
                write!(
                    f,
                    "parameter ${name} is bound but the query declares no ${name}"
                )
            }
            Error::ParameterTypeMismatch {
                name,
                expected,
                got,
            } => write!(
                f,
                "parameter ${name} is used as {expected} but {got} was bound"
            ),
            Error::Unsupported(s) => write!(f, "unsupported: {s}"),
        }
    }
}

impl std::error::Error for Error {}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_offender() {
        let e = Error::UnboundedQuantifier {
            quantifier: "+".into(),
        };
        assert!(e.to_string().contains('+'));
        let e = Error::ConditionalJoin { var: "y".into() };
        assert!(e.to_string().contains('y'));
        let e = Error::LimitExceeded {
            what: "matches",
            limit: 10,
        };
        assert!(e.to_string().contains("10 matches"));
    }
}
