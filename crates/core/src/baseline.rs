//! The reference engine: a literal implementation of the §6 execution
//! model.
//!
//! Where the production matcher interleaves quantifier unrolling with the
//! graph walk, this engine follows the specification text step by step:
//!
//! 1. **Normalization** (§6.2) — shared with the production engine.
//! 2. **Expansion** (§6.3) — the pattern is expanded into a set of *rigid
//!    patterns* `π_{n,ℓ}`: one per choice of iteration count for every
//!    quantifier and branch for every union/alternation. Variables under a
//!    quantifier receive iteration superscripts (here rendered `b·1`,
//!    `b·2`, ...), exactly like the paper's `b¹, b²`.
//! 3. **Rigid-pattern matching** (§6.4) — every node-edge-node part of a
//!    rigid pattern is computed *independently* against the graph, and the
//!    parts are then concatenated by an implicit equi-join on variables
//!    with the same name.
//! 4. **Reduction and deduplication** (§6.5) — annotations are stripped
//!    (superscripted instances collapse into group bindings, anonymous
//!    variables disappear), equal reduced bindings are merged, and
//!    selectors are applied per endpoint partition.
//!
//! The expansion set is infinite for unbounded quantifiers; the §5
//! machinery makes evaluation feasible by bounding the useful expansion
//! depth — `TRAIL` can never use more than `|E|` edges, `ACYCLIC`/`SIMPLE`
//! more than `|N|`, and a selector never keeps a path longer than the
//! shortest few per partition (bounded by `|N| ·` pattern width).
//!
//! This engine is deliberately simple and slow (it is the benchmark
//! baseline of EB2) but independent: property tests assert it agrees with
//! the production engine on random graphs and patterns.

use std::collections::{BTreeMap, BTreeSet};

use property_graph::{NodeId, Path, PropertyGraph};

use crate::analysis::analyze;
use crate::ast::{
    EdgePattern, Expr, GraphPattern, NodePattern, PathPattern, PathPatternExpr, Restrictor,
};
use crate::binding::{BoundValue, MatchSet, PathBinding};
use crate::error::{Error, Result};
use crate::eval::{filter, join_and_filter, selector, EvalOptions};
use crate::normalize::{is_anonymous, normalize};

/// Separator between a variable base name and its iteration superscripts.
const ITER_SEP: char = '\u{00B7}'; // ·

/// One expanded rigid pattern: a strict alternation of node positions and
/// edge patterns, with all disjunction resolved and all quantifiers
/// unrolled.
#[derive(Clone, Debug, Default)]
struct Rigid {
    /// Node positions; several node patterns may constrain one position
    /// (the paper's clean-up step merges adjacent anonymous patterns).
    nodes: Vec<Vec<NodePattern>>,
    edges: Vec<EdgePattern>,
    /// All prefilters, with singleton references renamed to instances;
    /// evaluated after the equi-join.
    preds: Vec<Expr>,
    /// Restrictor scopes as `(restrictor, first node pos, last node pos)`.
    scopes: Vec<(Restrictor, usize, usize)>,
    /// Multiset-alternation provenance (§4.5).
    alt_marks: Vec<u32>,
    /// Instance name → (base name, iteration indices outermost-first).
    instances: BTreeMap<String, (String, Vec<u32>)>,
    /// Group variables whose quantifier was expanded zero times; they bind
    /// to the empty group (`COUNT(e.*) = 0`, §5.3).
    zero_groups: Vec<(String, bool)>,
}

/// A fragment produced during expansion: a partial rigid pattern that
/// still concatenates with its neighbours.
#[derive(Clone, Debug, Default)]
struct Frag {
    items: Vec<Item>,
    preds: Vec<Expr>,
    /// Scope ranges as item-index pairs (inclusive).
    scopes: Vec<(Restrictor, usize, usize)>,
    alt_marks: Vec<u32>,
    instances: BTreeMap<String, (String, Vec<u32>)>,
    zero_groups: Vec<(String, bool)>,
}

#[derive(Clone, Debug)]
enum Item {
    Node(NodePattern),
    Edge(EdgePattern),
}

impl Frag {
    fn concat(mut self, mut other: Frag) -> Frag {
        let shift = self.items.len();
        self.items.append(&mut other.items);
        self.preds.append(&mut other.preds);
        self.scopes.extend(
            other
                .scopes
                .into_iter()
                .map(|(r, s, e)| (r, s + shift, e + shift)),
        );
        self.alt_marks.append(&mut other.alt_marks);
        self.instances.append(&mut other.instances);
        self.zero_groups.append(&mut other.zero_groups);
        self
    }

    /// Applies one quantifier-iteration renaming: every variable declared
    /// in this fragment gains the iteration index `k`.
    fn renamed(mut self, k: u32) -> Frag {
        let mut mapping: BTreeMap<String, String> = BTreeMap::new();
        let mut new_instances = BTreeMap::new();
        for item in &mut self.items {
            let var = match item {
                Item::Node(n) => &mut n.var,
                Item::Edge(e) => &mut e.var,
            };
            if let Some(v) = var {
                let renamed = format!("{v}{ITER_SEP}{k}");
                let (base, mut idxs) = self
                    .instances
                    .remove(v)
                    .unwrap_or_else(|| (v.clone(), Vec::new()));
                idxs.insert(0, k);
                new_instances.insert(renamed.clone(), (base, idxs));
                mapping.insert(v.clone(), renamed.clone());
                *var = Some(renamed);
            }
        }
        self.instances = new_instances;
        for pred in &mut self.preds {
            rename_refs(pred, &mapping);
        }
        self
    }
}

/// Renames non-aggregate variable references (aggregate arguments keep
/// their base name: they range over the whole group, §4.4).
fn rename_refs(e: &mut Expr, mapping: &BTreeMap<String, String>) {
    let rn = |v: &mut String| {
        if let Some(new) = mapping.get(v.as_str()) {
            *v = new.clone();
        }
    };
    match e {
        // EXISTS only occurs in postfilters (analysis guarantees it), so
        // it never needs iteration renaming; parameters reference no
        // variables at all.
        Expr::Literal(_) | Expr::Parameter(_) | Expr::Aggregate { .. } | Expr::Exists(_) => {}
        Expr::Var(v) => rn(v),
        Expr::Property(v, _) => rn(v),
        Expr::Not(i) | Expr::IsNull(i, _) => rename_refs(i, mapping),
        Expr::And(a, b) | Expr::Or(a, b) | Expr::Cmp(_, a, b) | Expr::Arith(_, a, b) => {
            rename_refs(a, mapping);
            rename_refs(b, mapping);
        }
        Expr::IsDirected(v) => rn(v),
        Expr::IsSourceOf { node, edge } | Expr::IsDestinationOf { node, edge } => {
            rn(node);
            rn(edge);
        }
        Expr::Same(vs) | Expr::AllDifferent(vs) => vs.iter_mut().for_each(rn),
    }
}

/// Collects named variables declared in a subtree (for zero-iteration
/// empty groups).
fn body_vars(p: &PathPattern, out: &mut Vec<(String, bool)>) {
    match p {
        PathPattern::Node(n) => {
            if let Some(v) = &n.var {
                if !is_anonymous(v) && !out.iter().any(|(x, _)| x == v) {
                    out.push((v.clone(), false));
                }
            }
        }
        PathPattern::Edge(e) => {
            if let Some(v) = &e.var {
                if !is_anonymous(v) && !out.iter().any(|(x, _)| x == v) {
                    out.push((v.clone(), true));
                }
            }
        }
        PathPattern::Concat(ps) => ps.iter().for_each(|p| body_vars(p, out)),
        PathPattern::Paren { inner, .. }
        | PathPattern::Quantified { inner, .. }
        | PathPattern::Questioned(inner) => body_vars(inner, out),
        PathPattern::Union(bs) | PathPattern::Alternation(bs) => {
            bs.iter().for_each(|p| body_vars(p, out))
        }
    }
}

/// Counts edge positions in a subtree (to derive expansion caps).
fn edge_positions(p: &PathPattern) -> usize {
    match p {
        PathPattern::Node(_) => 0,
        PathPattern::Edge(_) => 1,
        PathPattern::Concat(ps) => ps.iter().map(edge_positions).sum(),
        PathPattern::Paren { inner, .. } | PathPattern::Questioned(inner) => edge_positions(inner),
        PathPattern::Quantified { inner, quantifier } => {
            edge_positions(inner) * quantifier.max.unwrap_or(1) as usize
        }
        PathPattern::Union(bs) | PathPattern::Alternation(bs) => {
            bs.iter().map(edge_positions).max().unwrap_or(0)
        }
    }
}

struct Expander<'g> {
    graph: &'g PropertyGraph,
    /// Path-head restrictor (covers the whole pattern).
    restrictor: Option<Restrictor>,
    /// Length groups the selector can keep (1 when none) — the k-th
    /// shortest length can exceed the shortest by up to a cycle length
    /// per group, so the selector-only expansion budget scales with it.
    selector_groups: usize,
    /// Hard cap on the number of rigid patterns, to keep the oracle total.
    budget: usize,
}

impl Expander<'_> {
    /// The maximum useful iteration count for an unbounded quantifier.
    fn unbounded_cap(&self, body_edges: usize, restricted: Option<Restrictor>) -> u32 {
        let per_iter = body_edges.max(1);
        let edge_budget = match restricted.or(self.restrictor) {
            Some(Restrictor::Trail) => self.graph.edge_count(),
            Some(Restrictor::Acyclic) | Some(Restrictor::Simple) => self.graph.node_count(),
            // Selector-only: a shortest walk never revisits a
            // (node, phase) product state, so |N| · width edges suffice
            // for the first length group; each further group can add at
            // most one more cycle (≤ |N| · width edges).
            None => self.graph.node_count() * (body_edges + 1) * self.selector_groups,
        };
        (edge_budget / per_iter) as u32
    }

    fn expand(&self, p: &PathPattern, restricted: Option<Restrictor>) -> Result<Vec<Frag>> {
        let frags = match p {
            PathPattern::Node(n) => {
                let mut frag = Frag::default();
                let mut n = n.clone();
                if let Some(pred) = n.predicate.take() {
                    frag.preds.push(pred);
                }
                frag.items.push(Item::Node(n));
                vec![frag]
            }
            PathPattern::Edge(e) => {
                let mut frag = Frag::default();
                let mut e = e.clone();
                if let Some(pred) = e.predicate.take() {
                    frag.preds.push(pred);
                }
                frag.items.push(Item::Edge(e));
                vec![frag]
            }
            PathPattern::Concat(parts) => {
                let mut acc = vec![Frag::default()];
                for part in parts {
                    let expansions = self.expand(part, restricted)?;
                    let mut next = Vec::new();
                    for a in &acc {
                        for b in &expansions {
                            next.push(a.clone().concat(b.clone()));
                            if next.len().saturating_mul(acc.len()) > self.budget {
                                return Err(Error::LimitExceeded {
                                    what: "rigid patterns",
                                    limit: self.budget,
                                });
                            }
                        }
                    }
                    acc = next;
                }
                acc
            }
            PathPattern::Paren {
                restrictor,
                inner,
                predicate,
            } => {
                let inner_restricted = restrictor.or(restricted);
                let mut out = Vec::new();
                for mut frag in self.expand(inner, inner_restricted)? {
                    if let Some(r) = restrictor {
                        let end = frag.items.len().saturating_sub(1);
                        frag.scopes.push((*r, 0, end));
                    }
                    if let Some(pred) = predicate {
                        frag.preds.push(pred.clone());
                    }
                    out.push(frag);
                }
                out
            }
            PathPattern::Quantified { inner, quantifier } => {
                let cap = match quantifier.max {
                    Some(m) => m,
                    None => self
                        .unbounded_cap(edge_positions(inner), restricted)
                        .max(quantifier.min),
                };
                // A body with no edge positions cannot make progress, so
                // expansions beyond `min` repeat the same bindings.
                let cap = if edge_positions(inner) == 0 {
                    quantifier.min.max(1)
                } else {
                    cap
                };
                let body = self.expand(inner, restricted)?;
                let mut out = Vec::new();
                for n in quantifier.min..=cap {
                    if n == 0 {
                        let mut frag = Frag::default();
                        body_vars(inner, &mut frag.zero_groups);
                        out.push(frag);
                        continue;
                    }
                    // Cartesian product of n body expansions, each with
                    // iteration superscript k.
                    let mut acc = vec![Frag::default()];
                    for k in 1..=n {
                        let mut next = Vec::new();
                        for a in &acc {
                            for b in &body {
                                next.push(a.clone().concat(b.clone().renamed(k)));
                            }
                        }
                        acc = next;
                        if acc.len() > self.budget {
                            return Err(Error::LimitExceeded {
                                what: "rigid patterns",
                                limit: self.budget,
                            });
                        }
                    }
                    out.extend(acc);
                    if out.len() > self.budget {
                        return Err(Error::LimitExceeded {
                            what: "rigid patterns",
                            limit: self.budget,
                        });
                    }
                }
                out
            }
            PathPattern::Questioned(inner) => {
                // `?` is {0,1} without renaming: variables stay
                // conditional singletons (§4.6).
                let mut out = vec![Frag::default()];
                out.extend(self.expand(inner, restricted)?);
                out
            }
            PathPattern::Union(branches) => {
                let mut out = Vec::new();
                for b in branches {
                    out.extend(self.expand(b, restricted)?);
                }
                out
            }
            PathPattern::Alternation(branches) => {
                let mut out = Vec::new();
                for (i, b) in branches.iter().enumerate() {
                    for mut frag in self.expand(b, restricted)? {
                        frag.alt_marks.insert(0, i as u32);
                        out.push(frag);
                    }
                }
                out
            }
        };
        Ok(frags)
    }
}

/// Converts a fragment into a rigid pattern by merging adjacent node
/// positions (the paper's clean-up step) and mapping scope indices to
/// node positions.
fn to_rigid(frag: Frag) -> Rigid {
    let mut rigid = Rigid {
        preds: frag.preds,
        alt_marks: frag.alt_marks,
        instances: frag.instances,
        zero_groups: frag.zero_groups,
        ..Rigid::default()
    };
    // item index → node position (for scope translation).
    let mut item_pos: Vec<usize> = Vec::with_capacity(frag.items.len());
    for item in frag.items {
        match item {
            Item::Node(n) => {
                let at_node_boundary = rigid.nodes.len() == rigid.edges.len();
                if at_node_boundary {
                    rigid.nodes.push(vec![n]);
                } else {
                    // Two adjacent node patterns constrain one position.
                    rigid.nodes.last_mut().expect("non-empty").push(n);
                }
                item_pos.push(rigid.nodes.len() - 1);
            }
            Item::Edge(e) => {
                if rigid.nodes.len() == rigid.edges.len() {
                    // An edge with no preceding node position (can happen
                    // at fragment boundaries before normalization): frame
                    // it with an anonymous position.
                    rigid.nodes.push(vec![NodePattern::any()]);
                }
                rigid.edges.push(e);
                item_pos.push(rigid.nodes.len() - 1);
            }
        }
    }
    if rigid.nodes.len() == rigid.edges.len() {
        rigid.nodes.push(vec![NodePattern::any()]);
    }
    for (r, s, e) in frag.scopes {
        let sp = item_pos.get(s).copied().unwrap_or(0);
        let ep = item_pos.get(e).copied().unwrap_or(rigid.nodes.len() - 1);
        // An edge item's node position is its left endpoint; the scope
        // extends one further right.
        let ep = ep.min(rigid.nodes.len() - 1);
        rigid.scopes.push((r, sp, ep.max(sp)));
    }
    rigid
}

/// Environment for rigid-pattern predicates: instance names resolve
/// directly; base names of superscripted instances resolve to the
/// collected group (iteration order).
struct RigidEnv<'a> {
    binding: &'a BTreeMap<String, BoundValue>,
    groups: &'a BTreeMap<String, BoundValue>,
}

impl filter::Env for RigidEnv<'_> {
    fn lookup(&self, var: &str) -> Option<BoundValue> {
        self.binding
            .get(var)
            .or_else(|| self.groups.get(var))
            .cloned()
    }
}

/// One partial solution while joining parts.
#[derive(Clone, Debug)]
struct Partial {
    nodes: Vec<NodeId>,
    edges: Vec<property_graph::EdgeId>,
    binding: BTreeMap<String, BoundValue>,
}

/// Matches one rigid pattern (§6.4): each node-edge-node part is computed
/// independently, then parts are concatenated by an equi-join.
fn match_rigid(
    graph: &PropertyGraph,
    rigid: &Rigid,
    opts: &EvalOptions,
) -> Result<Vec<PathBinding>> {
    // -- Per-part independent computation. ---------------------------------
    // Part i connects node positions i and i+1 via edge i.
    let node_ok = |pos: usize, n: NodeId| -> bool {
        rigid.nodes[pos].iter().all(|np| {
            np.label
                .as_ref()
                .is_none_or(|l| l.matches(&graph.node(n).labels))
        })
    };
    let mut parts: Vec<Vec<(NodeId, property_graph::EdgeId, NodeId)>> = Vec::new();
    for (i, ep) in rigid.edges.iter().enumerate() {
        let mut rows = Vec::new();
        for e in graph.edges() {
            let data = graph.edge(e);
            if let Some(l) = &ep.label {
                if !l.matches(&data.labels) {
                    continue;
                }
            }
            let (u, v) = data.endpoints.pair();
            let candidates: &[(NodeId, NodeId, property_graph::Traversal)] = &match data.endpoints {
                property_graph::Endpoints::Directed { src, dst } => [
                    (src, dst, property_graph::Traversal::Forward),
                    (dst, src, property_graph::Traversal::Backward),
                ],
                property_graph::Endpoints::Undirected(..) => [
                    (u, v, property_graph::Traversal::Undirected),
                    (v, u, property_graph::Traversal::Undirected),
                ],
            };
            let mut seen_pairs: Vec<(NodeId, NodeId)> = Vec::new();
            for &(from, to, t) in candidates {
                if !ep.direction.permits(t) {
                    continue;
                }
                // An undirected self loop or symmetric listing must not
                // produce the same (from,to) row twice.
                if seen_pairs.contains(&(from, to)) {
                    continue;
                }
                seen_pairs.push((from, to));
                if node_ok(i, from) && node_ok(i + 1, to) {
                    rows.push((from, e, to));
                }
            }
        }
        parts.push(rows);
    }

    // -- Equi-join (shared variables + walk adjacency). ---------------------
    let bind_node = |partial: &mut Partial, pos: usize, n: NodeId| -> bool {
        for np in &rigid.nodes[pos] {
            if let Some(v) = &np.var {
                match partial.binding.get(v) {
                    Some(BoundValue::Node(existing)) if *existing != n => return false,
                    Some(BoundValue::Node(_)) => {}
                    Some(_) => return false,
                    None => {
                        partial.binding.insert(v.clone(), BoundValue::Node(n));
                    }
                }
            }
        }
        true
    };

    let mut partials: Vec<Partial> = Vec::new();
    if rigid.edges.is_empty() {
        for n in graph.nodes() {
            if node_ok(0, n) {
                let mut p = Partial {
                    nodes: vec![n],
                    edges: vec![],
                    binding: BTreeMap::new(),
                };
                if bind_node(&mut p, 0, n) {
                    partials.push(p);
                }
            }
        }
    } else {
        for &(from, e, to) in &parts[0] {
            let mut p = Partial {
                nodes: vec![from, to],
                edges: vec![e],
                binding: BTreeMap::new(),
            };
            if !bind_node(&mut p, 0, from) || !bind_node(&mut p, 1, to) {
                continue;
            }
            if let Some(v) = &rigid.edges[0].var {
                p.binding.insert(v.clone(), BoundValue::Edge(e));
            }
            partials.push(p);
        }
        for (i, rows) in parts.iter().enumerate().skip(1) {
            let mut next = Vec::new();
            for p in &partials {
                for &(from, e, to) in rows {
                    if *p.nodes.last().expect("non-empty") != from {
                        continue;
                    }
                    let mut q = p.clone();
                    q.nodes.push(to);
                    q.edges.push(e);
                    if !bind_node(&mut q, i + 1, to) {
                        continue;
                    }
                    if let Some(v) = &rigid.edges[i].var {
                        match q.binding.get(v) {
                            Some(BoundValue::Edge(existing)) if *existing != e => continue,
                            Some(BoundValue::Edge(_)) => {}
                            Some(_) => continue,
                            None => {
                                q.binding.insert(v.clone(), BoundValue::Edge(e));
                            }
                        }
                    }
                    next.push(q);
                }
            }
            partials = next;
            if partials.len() > opts.max_matches {
                return Err(Error::LimitExceeded {
                    what: "join rows",
                    limit: opts.max_matches,
                });
            }
        }
    }

    // -- Restrictors (§5.1: checked "at this point"). -----------------------
    partials.retain(|p| {
        rigid.scopes.iter().all(|(r, s, e)| {
            let sub_nodes = &p.nodes[*s..=(*e).min(p.nodes.len() - 1)];
            let sub_edges = &p.edges[*s..(*e).min(p.edges.len())];
            let path = Path::new(sub_nodes.to_vec(), sub_edges.to_vec());
            match r {
                Restrictor::Trail => path.is_trail(),
                Restrictor::Acyclic => path.is_acyclic(),
                Restrictor::Simple => path.is_simple(),
            }
        })
    });

    // -- Predicates & reduction. --------------------------------------------
    let mut out = Vec::new();
    for p in partials {
        // Build group bindings from superscripted instances.
        let mut group_members: BTreeMap<String, Vec<(Vec<u32>, BoundValue)>> = BTreeMap::new();
        for (inst, (base, idxs)) in &rigid.instances {
            if let Some(v) = p.binding.get(inst) {
                group_members
                    .entry(base.clone())
                    .or_default()
                    .push((idxs.clone(), v.clone()));
            }
        }
        let mut groups: BTreeMap<String, BoundValue> = BTreeMap::new();
        for (base, mut members) in group_members {
            if is_anonymous(&base) {
                continue;
            }
            members.sort_by(|a, b| a.0.cmp(&b.0));
            let is_edge = matches!(members[0].1, BoundValue::Edge(_));
            let group = if is_edge {
                BoundValue::EdgeGroup(
                    members
                        .iter()
                        .filter_map(|(_, v)| v.as_element().and_then(|e| e.as_edge()))
                        .collect(),
                )
            } else {
                BoundValue::NodeGroup(
                    members
                        .iter()
                        .filter_map(|(_, v)| v.as_element().and_then(|e| e.as_node()))
                        .collect(),
                )
            };
            groups.insert(base, group);
        }
        for (base, is_edge) in &rigid.zero_groups {
            groups.entry(base.clone()).or_insert_with(|| {
                if *is_edge {
                    BoundValue::EdgeGroup(vec![])
                } else {
                    BoundValue::NodeGroup(vec![])
                }
            });
        }

        let env = RigidEnv {
            binding: &p.binding,
            groups: &groups,
        };
        if !rigid
            .preds
            .iter()
            .all(|pred| filter::truth(graph, &env, pred) == Some(true))
        {
            continue;
        }

        // Reduction: strip instance annotations, drop anonymous variables.
        let mut bindings: BTreeMap<String, BoundValue> = BTreeMap::new();
        for (name, v) in &p.binding {
            if rigid.instances.contains_key(name) || is_anonymous(name) {
                continue;
            }
            bindings.insert(name.clone(), v.clone());
        }
        bindings.extend(groups);
        out.push(PathBinding {
            path: Path::new(p.nodes, p.edges),
            bindings,
            alt_marks: rigid.alt_marks.clone(),
        });
    }
    Ok(out)
}

/// Evaluates a graph pattern with the literal §6 model. Produces exactly
/// the same reduced, deduplicated, selected binding sets as
/// [`crate::eval::evaluate`].
pub fn evaluate(
    graph: &PropertyGraph,
    pattern: &GraphPattern,
    opts: &EvalOptions,
) -> Result<MatchSet> {
    let normalized = normalize(pattern);
    analyze(&normalized)?;

    // The baseline takes no parameter bindings, so a `$name` placeholder
    // can never be satisfied here: reject it up front instead of letting
    // it evaluate as NULL and silently empty every predicate. (The plan
    // layer is the parameter-aware path; the oracle stays literal-only.)
    let mut slots = crate::plan::ParamSlots::new();
    crate::plan::collect_graph_params(&normalized, &mut slots);
    if let Some(name) = slots.into_keys().next() {
        return Err(Error::UnboundParameter { name });
    }

    let mut per_path = Vec::with_capacity(normalized.paths.len());
    for expr in &normalized.paths {
        per_path.push(match_one_path(graph, expr, opts)?);
    }
    Ok(join_and_filter(
        graph,
        &normalized,
        &per_path,
        opts,
        &crate::plan::ExistsPlans::default(),
    ))
}

fn match_one_path(
    graph: &PropertyGraph,
    expr: &PathPatternExpr,
    opts: &EvalOptions,
) -> Result<Vec<PathBinding>> {
    let expander = Expander {
        graph,
        restrictor: expr.restrictor,
        selector_groups: expr
            .selector
            .as_ref()
            .and_then(selector::length_groups)
            .unwrap_or(1),
        budget: opts.max_matches.min(2_000_000),
    };
    let frags = expander.expand(&expr.pattern, expr.restrictor)?;

    // Rigid matching + reduction (§6.4).
    let mut reduced: BTreeSet<PathBinding> = BTreeSet::new();
    for frag in frags {
        let mut rigid = to_rigid(frag);
        if let Some(r) = expr.restrictor {
            rigid.scopes.push((r, 0, rigid.nodes.len() - 1));
        }
        for b in match_rigid(graph, &rigid, opts)? {
            reduced.insert(b);
        }
    }

    // Deduplication happened via the set; selectors come last (§5.1).
    let mut bindings: Vec<PathBinding> = reduced.into_iter().collect();
    if let Some(sel) = &expr.selector {
        bindings = selector::apply(graph, sel, bindings);
    }
    Ok(bindings)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Direction, LabelExpr, Quantifier, Selector};
    use property_graph::Endpoints;

    fn node(v: &str) -> PathPattern {
        PathPattern::Node(NodePattern::var(v))
    }

    fn edge_r(v: &str) -> PathPattern {
        PathPattern::Edge(EdgePattern::any(Direction::Right).with_var(v))
    }

    fn chain(n: usize) -> PropertyGraph {
        let mut g = PropertyGraph::new();
        let ids: Vec<NodeId> = (0..n)
            .map(|i| g.add_node(&format!("n{i}"), ["N"], []))
            .collect();
        for i in 0..n - 1 {
            g.add_edge(
                &format!("e{i}"),
                Endpoints::directed(ids[i], ids[i + 1]),
                ["T"],
                [],
            );
        }
        g
    }

    #[test]
    fn agrees_with_engine_on_fixed_patterns() {
        let g = chain(4);
        let gp = GraphPattern::single(PathPattern::concat(vec![
            node("s"),
            edge_r("e"),
            node("m"),
            edge_r("f"),
            node("t"),
        ]));
        let opts = EvalOptions::default();
        let a = evaluate(&g, &gp, &opts).unwrap();
        let b = crate::eval::evaluate(&g, &gp, &opts).unwrap();
        assert_eq!(a.len(), 2);
        assert_eq!(sorted(a), sorted(b));
    }

    #[test]
    fn agrees_on_quantified_patterns() {
        let g = chain(5);
        let body = PathPattern::concat(vec![
            PathPattern::Node(NodePattern::any()),
            edge_r("t"),
            PathPattern::Node(NodePattern::any()),
        ])
        .paren();
        let gp = GraphPattern::single(PathPattern::concat(vec![
            node("a"),
            body.quantified(Quantifier::range(1, Some(3))),
            node("b"),
        ]));
        let opts = EvalOptions::default();
        let a = evaluate(&g, &gp, &opts).unwrap();
        let b = crate::eval::evaluate(&g, &gp, &opts).unwrap();
        // Chains of length 1..3 in a 4-edge path graph: 4 + 3 + 2.
        assert_eq!(a.len(), 9);
        assert_eq!(sorted(a), sorted(b));
    }

    #[test]
    fn agrees_on_trail_restricted_cycles() {
        let mut g = PropertyGraph::new();
        let a = g.add_node("a", ["N"], []);
        let b = g.add_node("b", ["N"], []);
        g.add_edge("ab", Endpoints::directed(a, b), ["T"], []);
        g.add_edge("ba", Endpoints::directed(b, a), ["T"], []);
        let body = PathPattern::concat(vec![
            PathPattern::Node(NodePattern::any()),
            edge_r("t"),
            PathPattern::Node(NodePattern::any()),
        ])
        .paren();
        let gp = GraphPattern {
            paths: vec![PathPatternExpr {
                selector: None,
                restrictor: Some(Restrictor::Trail),
                path_var: None,
                pattern: PathPattern::concat(vec![
                    node("s"),
                    body.quantified(Quantifier::plus()),
                    node("d"),
                ]),
            }],
            where_clause: None,
        };
        let opts = EvalOptions::default();
        let x = evaluate(&g, &gp, &opts).unwrap();
        let y = crate::eval::evaluate(&g, &gp, &opts).unwrap();
        assert_eq!(x.len(), 4);
        assert_eq!(sorted(x), sorted(y));
    }

    #[test]
    fn agrees_on_selector_covered_star() {
        let mut g = PropertyGraph::new();
        let a = g.add_node("a", ["N"], []);
        let b = g.add_node("b", ["N"], []);
        let c = g.add_node("c", ["N"], []);
        g.add_edge("ab", Endpoints::directed(a, b), ["T"], []);
        g.add_edge("bc", Endpoints::directed(b, c), ["T"], []);
        g.add_edge("ca", Endpoints::directed(c, a), ["T"], []);
        let body = PathPattern::concat(vec![
            PathPattern::Node(NodePattern::any()),
            edge_r("t"),
            PathPattern::Node(NodePattern::any()),
        ])
        .paren();
        let gp = GraphPattern {
            paths: vec![PathPatternExpr {
                selector: Some(Selector::AllShortest),
                restrictor: None,
                path_var: None,
                pattern: PathPattern::concat(vec![
                    node("s"),
                    body.quantified(Quantifier::star()),
                    node("d"),
                ]),
            }],
            where_clause: None,
        };
        let opts = EvalOptions::default();
        let x = evaluate(&g, &gp, &opts).unwrap();
        let y = crate::eval::evaluate(&g, &gp, &opts).unwrap();
        assert_eq!(x.len(), 9); // every ordered pair on a 3-cycle
        assert_eq!(sorted(x), sorted(y));
    }

    #[test]
    fn union_dedup_matches_engine() {
        let g = chain(3);
        let branch =
            |l: &str| PathPattern::Node(NodePattern::var("c").with_label(LabelExpr::label(l)));
        let gp = GraphPattern::single(PathPattern::Union(vec![branch("N"), branch("N")]));
        let opts = EvalOptions::default();
        let x = evaluate(&g, &gp, &opts).unwrap();
        assert_eq!(x.len(), 3);
        let gp = GraphPattern::single(PathPattern::Alternation(vec![branch("N"), branch("N")]));
        let x = evaluate(&g, &gp, &opts).unwrap();
        assert_eq!(x.len(), 6);
    }

    #[test]
    fn baseline_rejects_parameterized_patterns() {
        // The oracle takes no bindings; a `$name` must be a typed error,
        // never a silent NULL that empties every predicate.
        let g = chain(3);
        let gp = GraphPattern::single(PathPattern::Node(NodePattern::var("x").with_predicate(
            Expr::cmp(
                crate::ast::CmpOp::Ge,
                Expr::prop("x", "w"),
                Expr::Parameter("min".into()),
            ),
        )));
        assert_eq!(
            evaluate(&g, &gp, &EvalOptions::default()),
            Err(Error::UnboundParameter { name: "min".into() })
        );
    }

    fn sorted(ms: MatchSet) -> Vec<crate::binding::MatchRow> {
        let mut rows = ms.rows;
        rows.sort();
        rows
    }
}
