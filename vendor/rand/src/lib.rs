//! Offline shim for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! re-implements exactly the API subset the workspace uses: a seedable
//! deterministic generator ([`rngs::StdRng`]), [`Rng::gen_bool`], and
//! [`Rng::gen_range`] over integer ranges. The generator is a SplitMix64,
//! which is plenty for seeded synthetic workloads — determinism per seed
//! is the property the callers rely on, not statistical quality.
//!
//! Note: because the algorithm differs from upstream `StdRng` (ChaCha12),
//! graphs generated for a given seed differ from ones generated with the
//! real crate. All callers in this workspace only require seed-stability
//! within one build, which this shim provides.

/// Types that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator seeded from a single `u64`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The sampling surface the workspace uses.
pub trait Rng {
    /// The next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        // 53 uniform mantissa bits → uniform in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }

    /// A uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic seedable generator (SplitMix64 core).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // Avoid the all-zero orbit degenerating early.
            StdRng {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seed_determinism() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: usize = r.gen_range(0..7);
            assert!(x < 7);
            let y: i64 = r.gen_range(1..=20);
            assert!((1..=20).contains(&y));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(2);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }
}
