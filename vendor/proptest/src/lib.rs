//! Offline shim for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! re-implements the API subset the workspace's property tests use:
//! [`Strategy`] with `prop_map` / `prop_filter` / `prop_flat_map` /
//! `prop_recursive` / `boxed`, [`Just`], tuple and integer-range
//! strategies, regex-ish `&str` string strategies, the
//! `proptest::{option, sample, collection, bool, num, char}` helper
//! modules, and the `proptest!` / `prop_oneof!` / `prop_assert!` /
//! `prop_assert_eq!` macros.
//!
//! Differences from upstream, deliberately accepted:
//!
//! * **No shrinking.** A failing case panics with the assertion message;
//!   the per-test RNG is seeded deterministically from the test name, so
//!   failures reproduce run-to-run.
//! * **Uniform-ish generation.** Recursive strategies decay geometrically
//!   with depth instead of upstream's size-budget machinery.
//! * `&str` strategies support the character-class subset the workspace
//!   uses (`[a-z]`, `[ -~]`, literals, `{m,n}` / `{n}` / `?` / `*` / `+`),
//!   not full regex.

use std::rc::Rc;

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// Deterministic generator handed to strategies (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn seed_from(name: &str) -> TestRng {
        // FNV-1a over the test name: stable across runs and platforms.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            state: h ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound as u64) as usize
    }

    /// Uniform in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

// ---------------------------------------------------------------------------
// Strategy trait and combinators
// ---------------------------------------------------------------------------

/// A recipe for generating values of one type.
pub trait Strategy {
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Rejects values failing `pred` (bounded retries).
    fn prop_filter<F>(self, reason: impl Into<String>, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            pred,
            reason: reason.into(),
        }
    }

    /// Generates a value, then generates from the strategy it selects.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Erases the concrete strategy type (cheaply clonable).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Rc::new(move |rng: &mut TestRng| self.generate(rng)))
    }

    /// Builds recursive structures: `self` is the leaf case and `recurse`
    /// wraps an inner strategy into the recursive cases. The probability
    /// of recursing decays with remaining `depth`.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R + 'static,
    {
        let leaf = Rc::new(self.boxed());
        let recurse = Rc::new(recurse);
        recursive_levels(leaf, recurse, depth)
    }
}

fn recursive_levels<T, R, F>(
    leaf: Rc<BoxedStrategy<T>>,
    recurse: Rc<F>,
    depth: u32,
) -> BoxedStrategy<T>
where
    T: 'static,
    R: Strategy<Value = T> + 'static,
    F: Fn(BoxedStrategy<T>) -> R + 'static,
{
    BoxedStrategy(Rc::new(move |rng: &mut TestRng| {
        if depth == 0 || rng.unit() < 0.4 {
            leaf.generate(rng)
        } else {
            let inner = recursive_levels(leaf.clone(), recurse.clone(), depth - 1);
            recurse(inner).generate(rng)
        }
    }))
}

/// Type-erased, clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(self.0.clone())
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Always yields a clone of its value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

#[derive(Clone)]
pub struct Filter<S, F> {
    inner: S,
    pred: F,
    reason: String,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter({}) rejected 10000 candidates", self.reason);
    }
}

#[derive(Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Uniform choice between erased alternatives (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len());
        self.arms[i].generate(rng)
    }
}

// -- Tuples -----------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($($S:ident/$idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A / 0);
impl_tuple_strategy!(A / 0, B / 1);
impl_tuple_strategy!(A / 0, B / 1, C / 2);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6, H / 7);

// -- Integer ranges ---------------------------------------------------------

macro_rules! impl_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )+};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// -- Regex-ish string strategies --------------------------------------------

/// `&str` strategies: the pattern is a sequence of literal characters and
/// character classes, each optionally quantified.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for (set, min, max) in &atoms {
            let n = *min + rng.below(*max - *min + 1);
            for _ in 0..n {
                out.push(set[rng.below(set.len())]);
            }
        }
        out
    }
}

type Atom = (Vec<char>, usize, usize);

fn parse_pattern(pat: &str) -> Vec<Atom> {
    let chars: Vec<char> = pat.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let set: Vec<char> = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .unwrap_or_else(|| panic!("unterminated class in {pat}"))
                    + i;
                let mut set = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (lo, hi) = (chars[j] as u32, chars[j + 2] as u32);
                        set.extend((lo..=hi).filter_map(char::from_u32));
                        j += 3;
                    } else {
                        set.push(chars[j]);
                        j += 1;
                    }
                }
                i = close + 1;
                set
            }
            '\\' if i + 1 < chars.len() => {
                i += 2;
                vec![chars[i - 1]]
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        // Optional quantifier.
        let (min, max) = if i < chars.len() {
            match chars[i] {
                '{' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == '}')
                        .unwrap_or_else(|| panic!("unterminated quantifier in {pat}"))
                        + i;
                    let body: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    match body.split_once(',') {
                        Some((lo, hi)) => (
                            lo.trim().parse().expect("quantifier min"),
                            hi.trim().parse().expect("quantifier max"),
                        ),
                        None => {
                            let n = body.trim().parse().expect("quantifier count");
                            (n, n)
                        }
                    }
                }
                '?' => {
                    i += 1;
                    (0, 1)
                }
                '*' => {
                    i += 1;
                    (0, 8)
                }
                '+' => {
                    i += 1;
                    (1, 8)
                }
                _ => (1, 1),
            }
        } else {
            (1, 1)
        };
        assert!(!set.is_empty(), "empty character class in {pat}");
        atoms.push((set, min, max));
    }
    atoms
}

// ---------------------------------------------------------------------------
// Helper modules
// ---------------------------------------------------------------------------

pub mod option {
    use super::{Strategy, TestRng};

    #[derive(Clone)]
    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.unit() < 0.25 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }

    /// `Some(inner)` with probability ¾, `None` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }
}

pub mod sample {
    use super::{Strategy, TestRng};

    #[derive(Clone)]
    pub struct Select<T>(Vec<T>);

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0[rng.below(self.0.len())].clone()
        }
    }

    /// Uniform choice from a non-empty vector.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "sample::select needs options");
        Select(options)
    }
}

pub mod collection {
    use super::{Strategy, TestRng};

    /// Lengths a generated collection may take.
    #[derive(Clone)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { min: n, max: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.max - self.size.min + 1;
            let n = self.size.min + rng.below(span);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A vector of `element` values with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod bool {
    use super::{Strategy, TestRng};

    pub struct Any;

    impl Strategy for Any {
        type Value = ::core::primitive::bool;
        fn generate(&self, rng: &mut TestRng) -> ::core::primitive::bool {
            rng.next_u64() & 1 == 1
        }
    }

    pub const ANY: Any = Any;
}

pub mod num {
    pub mod i64 {
        use crate::{Strategy, TestRng};

        pub struct Any;

        impl Strategy for Any {
            type Value = ::core::primitive::i64;
            fn generate(&self, rng: &mut TestRng) -> ::core::primitive::i64 {
                rng.next_u64() as ::core::primitive::i64
            }
        }

        pub const ANY: Any = Any;
    }
}

pub mod char {
    use super::{Strategy, TestRng};

    pub struct CharAny;

    impl Strategy for CharAny {
        type Value = ::core::primitive::char;
        fn generate(&self, rng: &mut TestRng) -> ::core::primitive::char {
            // Mostly printable ASCII, sometimes an arbitrary scalar value,
            // mirroring upstream's bias toward "interesting" characters.
            if rng.unit() < 0.8 {
                ::core::primitive::char::from_u32(0x20 + rng.below(0x5F) as u32).unwrap()
            } else {
                loop {
                    if let Some(c) = ::core::primitive::char::from_u32(rng.below(0x11_0000) as u32)
                    {
                        return c;
                    }
                }
            }
        }
    }

    /// Any `char`, biased toward printable ASCII.
    pub fn any() -> CharAny {
        CharAny
    }
}

// ---------------------------------------------------------------------------
// Config and macros
// ---------------------------------------------------------------------------

/// Per-`proptest!` block configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// Uniform choice between strategy expressions of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Property assertion (no shrinking: behaves like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Property equality assertion (no shrinking: behaves like `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Property inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Declares property tests: each function runs `config.cases` times with
/// freshly generated inputs. The RNG is seeded from the test's name, so
/// runs are deterministic and failures reproduce.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config $cfg; $($rest)*);
    };
    (@with_config $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::seed_from(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                let _ = case;
                $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)+
                $body
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config $crate::ProptestConfig::default(); $($rest)*);
    };
}

/// What `use proptest::prelude::*` brings in.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy, Union,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_per_name() {
        let mut a = crate::TestRng::seed_from("x");
        let mut b = crate::TestRng::seed_from("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn string_pattern_shapes() {
        let mut rng = crate::TestRng::seed_from("strings");
        for _ in 0..200 {
            let s = "[a-z][a-z0-9]{0,3}".generate(&mut rng);
            assert!((1..=4).contains(&s.len()), "{s:?}");
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            let t = "[ -~]{0,12}".generate(&mut rng);
            assert!(t.len() <= 12);
            assert!(t.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn combinators_compose() {
        let mut rng = crate::TestRng::seed_from("combos");
        let strat = prop_oneof![Just(1usize), (2usize..5).prop_map(|n| n * 10),]
            .prop_filter("nonzero", |n| *n != 0);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!(v == 1 || (20..50).contains(&v));
        }
        let vecs = crate::collection::vec(0u32..3, 2..5);
        for _ in 0..50 {
            let v = vecs.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_smoke(a in 0i64..10, (b, c) in (0u32..3, crate::sample::select(vec![7u8, 9]))) {
            prop_assert!((0..10).contains(&a));
            prop_assert!(b < 3);
            prop_assert!(c == 7 || c == 9);
        }
    }
}
