//! Offline shim for the `criterion` crate.
//!
//! The build environment cannot reach crates.io, so this crate implements
//! the small API subset the workspace's benches use: `Criterion`,
//! benchmark groups, `bench_function` / `bench_with_input`, `Bencher::iter`,
//! `BenchmarkId`, `Throughput`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Measurement model: each benchmark runs a short warm-up, then samples the
//! closure in batches until `measurement_time` elapses (default 200 ms) and
//! reports the median per-iteration time. That is enough to compare
//! alternatives within one run (the only thing this repo's benches do);
//! it makes no attempt at criterion's statistical machinery. When the
//! binary is invoked with `--test` (as `cargo test --benches` does), every
//! benchmark body runs exactly once so the run stays fast and acts as a
//! smoke test.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    test_mode: bool,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            test_mode,
            measurement_time: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_benchmark_id();
        run_bench(&id.render(), f, self.test_mode, self.measurement_time);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            test_mode: self.test_mode,
            measurement_time: self.measurement_time,
            _parent: std::marker::PhantomData,
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'c> {
    name: String,
    test_mode: bool,
    measurement_time: Duration,
    _parent: std::marker::PhantomData<&'c mut Criterion>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim's sampling is time-driven.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Caps how long one benchmark samples.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Accepted for API compatibility; throughput is not reported.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_benchmark_id();
        run_bench(
            &format!("{}/{}", self.name, id.render()),
            f,
            self.test_mode,
            self.measurement_time,
        );
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into_benchmark_id();
        run_bench(
            &format!("{}/{}", self.name, id.render()),
            |b| f(b, input),
            self.test_mode,
            self.measurement_time,
        );
        self
    }

    /// Ends the group (no-op; results print as they complete).
    pub fn finish(self) {}
}

/// Names one benchmark, optionally with a parameter.
pub struct BenchmarkId {
    name: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    pub fn new(name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            name: name.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            name: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }

    fn render(&self) -> String {
        match &self.parameter {
            Some(p) if self.name.is_empty() => p.clone(),
            Some(p) => format!("{}/{p}", self.name),
            None => self.name.clone(),
        }
    }
}

/// Things accepted wherever a benchmark name is expected.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            name: self,
            parameter: None,
        }
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            name: self.to_owned(),
            parameter: None,
        }
    }
}

/// Declared throughput of a benchmark (accepted, not reported).
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Passed to the benchmark body; [`Bencher::iter`] times the closure.
pub struct Bencher {
    test_mode: bool,
    measurement_time: Duration,
    /// Median nanoseconds per iteration, set by `iter`.
    result_ns: f64,
    iterations: u64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.test_mode {
            black_box(f());
            self.result_ns = 0.0;
            self.iterations = 1;
            return;
        }
        // Warm-up + calibration: find an iteration count that takes ≥ ~1ms.
        let mut batch = 1u64;
        loop {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let elapsed = t.elapsed();
            if elapsed >= Duration::from_millis(1) || batch >= 1 << 20 {
                break;
            }
            batch *= 4;
        }
        // Sample batches until the measurement budget is spent.
        let mut samples: Vec<f64> = Vec::new();
        let mut total_iters = 0u64;
        let deadline = Instant::now() + self.measurement_time;
        while Instant::now() < deadline || samples.is_empty() {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            samples.push(t.elapsed().as_nanos() as f64 / batch as f64);
            total_iters += batch;
            if samples.len() >= 200 {
                break;
            }
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        self.result_ns = samples[samples.len() / 2];
        self.iterations = total_iters;
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(
    name: &str,
    mut f: F,
    test_mode: bool,
    measurement_time: Duration,
) {
    let mut b = Bencher {
        test_mode,
        measurement_time,
        result_ns: 0.0,
        iterations: 0,
    };
    f(&mut b);
    if test_mode {
        println!("test {name} ... ok");
    } else {
        println!(
            "{name:<56} {:>14}  ({} iters)",
            format_ns(b.result_ns),
            b.iterations
        );
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
